// The cache example reproduces §5.2 of the paper: "consider an in-memory
// cache component backed by an underlying disk-based storage system. The
// cache hit rate and overall performance increase when requests for the
// same key are routed to the same cache replica."
//
// KVCache is a routed component (weaver.WithRouter): the runtime directs
// all requests for a key to the same replica, Slicer-style. KVStore is the
// disk-backed storage behind it, built on the repository's log-structured
// store. The example deploys three cache replicas in a multiprocess-shaped
// in-process deployment, drives a skewed workload at them, and prints the
// aggregate hit rate — which collapses if you disable routing (try
// -affinity=false).
//
//	go run ./examples/cache
//	go run ./examples/cache -affinity=false
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"reflect"
	"sync"
	"time"

	"repro/internal/autoscale"
	"repro/internal/deploy"
	"repro/internal/logging"
	"repro/internal/manager"
	"repro/internal/store"
	"repro/weaver"
)

// KVStore is the disk-based storage system behind the cache.
type KVStore interface {
	Load(ctx context.Context, key string) (string, error)
	Save(ctx context.Context, key, value string) error
}

type kvStore struct {
	weaver.Implements[KVStore]
	db *store.Store
}

// Init opens the backing store.
func (s *kvStore) Init(context.Context) error {
	dir := os.Getenv("CACHE_STORE_DIR")
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "weaver-cache")
		if err != nil {
			return err
		}
	}
	db, err := store.Open(dir, store.Options{})
	if err != nil {
		return err
	}
	s.db = db
	return nil
}

// Shutdown closes the backing store.
func (s *kvStore) Shutdown(context.Context) error { return s.db.Close() }

// Load reads a value; missing keys are materialized deterministically (the
// "database" can answer anything, slowly).
func (s *kvStore) Load(_ context.Context, key string) (string, error) {
	if v, ok, err := s.db.Get(key); err != nil {
		return "", err
	} else if ok {
		return string(v), nil
	}
	// Simulate the expensive backing computation the cache exists to
	// avoid, then persist the result.
	time.Sleep(2 * time.Millisecond)
	v := "value-of-" + key
	if err := s.db.Put(key, []byte(v)); err != nil {
		return "", err
	}
	return v, nil
}

// Save writes a value through to disk.
func (s *kvStore) Save(_ context.Context, key, value string) error {
	return s.db.Put(key, []byte(value))
}

// CacheStats identifies one replica's hit/miss counters.
type CacheStats struct {
	ReplicaID string
	Hits      int64
	Misses    int64
}

// KVCache is the routed in-memory cache component.
type KVCache interface {
	// Get returns the value for key, reading through to the store on miss.
	Get(ctx context.Context, key string) (string, error)
	// Stats returns this replica's hit/miss counters.
	Stats(ctx context.Context) (CacheStats, error)
}

type cacheRouter struct{}

func (cacheRouter) Get(key string) string { return key }

type kvCache struct {
	weaver.Implements[KVCache]
	weaver.WithRouter[cacheRouter]
	store weaver.Ref[KVStore]

	mu     sync.Mutex
	id     string
	data   map[string]string
	hits   int64
	misses int64
}

// Init prepares the cache map.
func (c *kvCache) Init(context.Context) error {
	c.data = map[string]string{}
	c.id = fmt.Sprintf("replica-%08x", rand.Uint64())
	return nil
}

// Get serves from memory or reads through to the store.
func (c *kvCache) Get(ctx context.Context, key string) (string, error) {
	c.mu.Lock()
	if v, ok := c.data[key]; ok {
		c.hits++
		c.mu.Unlock()
		return v, nil
	}
	c.misses++
	c.mu.Unlock()

	v, err := c.store.Get().Load(ctx, key)
	if err != nil {
		return "", err
	}
	c.mu.Lock()
	c.data[key] = v
	c.mu.Unlock()
	return v, nil
}

// Stats reports this replica's counters.
func (c *kvCache) Stats(context.Context) (CacheStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{ReplicaID: c.id, Hits: c.hits, Misses: c.misses}, nil
}

func main() {
	affinity := flag.Bool("affinity", true, "route requests for a key to the same replica")
	keys := flag.Int("keys", 300, "distinct keys in the workload")
	requests := flag.Int("requests", 3000, "workload size")
	flag.Parse()

	ctx := context.Background()

	// Deploy with three cache replicas. Disabling -affinity deploys the
	// cache as an unrouted component, so the balancer sprays keys across
	// replicas — exactly the contrast §5.2 draws.
	components := deploy.Inventory()
	if !*affinity {
		for i := range components {
			components[i].Routed = false
		}
	}
	d, err := deploy.StartInProcess(ctx, deploy.Options{
		Config: manager.Config{
			App:        "cache-example",
			Components: components,
			Autoscale: map[string]autoscale.Config{
				"KVCache": {MinReplicas: 3, MaxReplicas: 3},
			},
		},
		Fill: func(impl any, name string, logger *logging.Logger, resolve func(reflect.Type) (any, error)) error {
			return weaver.FillComponent(impl, name, logger, resolve, nil)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Stop()

	cache, err := deploy.Get[KVCache](ctx, d)
	if err != nil {
		log.Fatal(err)
	}

	// Wait for all replicas so the assignment is stable.
	deadline := time.Now().Add(10 * time.Second)
	for d.Manager.ReplicaCount("KVCache") < 3 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}

	// Skewed (zipf-like) workload: popular keys dominate.
	rng := rand.New(rand.NewPCG(1, 2))
	start := time.Now()
	for i := 0; i < *requests; i++ {
		// Square a uniform sample to skew toward low key indexes.
		f := rng.Float64()
		key := fmt.Sprintf("key-%d", int(f*f*float64(*keys)))
		if _, err := cache.Get(ctx, key); err != nil {
			log.Fatalf("Get: %v", err)
		}
	}
	elapsed := time.Since(start)

	hits, misses, err := totalStats(ctx, d)
	if err != nil {
		log.Fatal(err)
	}
	mode := "affinity routing"
	if !*affinity {
		mode = "round-robin (no affinity)"
	}
	fmt.Printf("cache: %s, 3 replicas, %d requests over %d keys in %v\n", mode, *requests, *keys, elapsed.Round(time.Millisecond))
	fmt.Printf("cache: hits=%d misses=%d hit rate=%.1f%%\n", hits, misses, 100*float64(hits)/float64(hits+misses))
}

// totalStats sums hit/miss counters across every cache replica by sampling
// Stats repeatedly: Stats is unrouted, so the balancer round-robins it
// across replicas and sampling visits them all. Replicas are deduplicated
// by id, keeping the freshest counters.
func totalStats(ctx context.Context, d *deploy.InProcess) (hits, misses int64, err error) {
	cache, err := deploy.Get[KVCache](ctx, d)
	if err != nil {
		return 0, 0, err
	}
	latest := map[string]CacheStats{}
	for i := 0; i < 60; i++ {
		st, err := cache.Stats(ctx)
		if err != nil {
			return 0, 0, err
		}
		if prev, ok := latest[st.ReplicaID]; !ok || st.Hits+st.Misses > prev.Hits+prev.Misses {
			latest[st.ReplicaID] = st
		}
	}
	for _, st := range latest {
		hits += st.Hits
		misses += st.Misses
	}
	return hits, misses, nil
}
