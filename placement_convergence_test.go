package repro

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/autoscale"
	"repro/internal/boutique"
	"repro/internal/deploy"
	"repro/internal/loadgen"
	"repro/internal/logging"
	"repro/internal/manager"
)

// TestLivePlacementConvergence deploys the boutique fully distributed (one
// component per group), turns on the live re-placement loop, drives load,
// and checks that the loop converges: the running grouping's offline score
// catches up to the planner's recommendation, and — the end-to-end claim —
// the local-call fraction actually measured on the wire in a fresh window
// matches that offline score within 5 points.
func TestLivePlacementConvergence(t *testing.T) {
	ctx := context.Background()
	const minGain = 0.05
	cfg := manager.Config{
		App:               "converge",
		DefaultAutoscale:  autoscale.Config{MinReplicas: 1, MaxReplicas: 1},
		PlacementInterval: 200 * time.Millisecond,
		PlacementMinGain:  minGain,
		PlacementMinCalls: 200,
		Logger:            logging.New(logging.Options{Component: "manager", Min: logging.LevelError}),
	}
	d, err := deploy.StartInProcess(ctx, deploy.Options{Config: cfg, Fill: benchFill})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	fe, err := deploy.Get[boutique.Frontend](ctx, d)
	if err != nil {
		t.Fatal(err)
	}

	// Background load: a boutique-shaped op mix, heavier on reads, driven
	// closed-loop from a few clients.
	ops := []loadgen.Op{
		loadgen.OpIndex, loadgen.OpBrowse, loadgen.OpBrowse, loadgen.OpBrowse,
		loadgen.OpAddToCart, loadgen.OpViewCart, loadgen.OpCheckout,
	}
	target := &loadgen.ComponentTarget{Frontend: fe}
	var (
		stop    = make(chan struct{})
		wg      sync.WaitGroup
		loadErr atomic.Value
	)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker owns a user (and so a cart): AddToCart always
			// precedes Checkout within a worker's cycle.
			user := "user-" + string(rune('a'+w))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				op := ops[i%len(ops)]
				if err := target.Do(ctx, op, user, "USD", "OLJCESPC7Z"); err != nil {
					loadErr.Store(err)
					return
				}
			}
		}(w)
	}
	defer func() {
		close(stop)
		wg.Wait()
		if err, ok := loadErr.Load().(error); ok {
			t.Fatalf("load failed during re-placement: %v", err)
		}
	}()

	// Wait for the control loop to quiesce: it has applied at least one
	// move and the remaining gain is below its threshold, observed twice in
	// a row so we aren't reading a mid-move snapshot.
	deadline := time.Now().Add(30 * time.Second)
	quiet := 0
	var st manager.PlacementStatus
	for quiet < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("re-placement did not converge: %+v", st)
		}
		time.Sleep(100 * time.Millisecond)
		st = d.Manager.PlacementStatus()
		if len(st.Moves) > 0 && st.TotalCalls >= cfg.PlacementMinCalls &&
			st.RecommendedScore-st.CurrentScore < minGain {
			quiet++
		} else {
			quiet = 0
		}
	}

	// Measure a fresh window on the converged placement: reset the merged
	// graph, let load run, then leave slack for the final proclet reports.
	d.Manager.Graph().Reset()
	time.Sleep(1500 * time.Millisecond)
	time.Sleep(300 * time.Millisecond) // flush in-flight load reports

	var calls, remote uint64
	for _, e := range d.Manager.Graph().Edges() {
		if e.Caller == "" {
			continue
		}
		calls += e.Calls
		remote += e.Remote
	}
	if calls == 0 {
		t.Fatal("no component-to-component calls observed in the measurement window")
	}
	measured := 1 - float64(remote)/float64(calls)

	final := d.Manager.PlacementStatus()
	t.Logf("moves=%d measured_local=%.3f current_score=%.3f recommended_score=%.3f calls=%d",
		len(final.Moves), measured, final.CurrentScore, final.RecommendedScore, calls)

	// The live loop's grouping must be as good as the planner's
	// recommendation (within the loop's own gain threshold)...
	if final.CurrentScore < final.RecommendedScore-minGain {
		t.Errorf("converged grouping scores %.3f, recommendation %.3f: loop stopped short",
			final.CurrentScore, final.RecommendedScore)
	}
	// ...and what the wire actually saw must match the offline score: the
	// paper's claim that the planner's model predicts real locality.
	if diff := measured - final.CurrentScore; diff < -0.05 || diff > 0.05 {
		t.Errorf("measured local fraction %.3f differs from offline score %.3f by more than 5 points",
			measured, final.CurrentScore)
	}
}
