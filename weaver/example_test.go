package weaver

import (
	"context"
	"fmt"
)

// ExampleInit shows the paper's Figure 2 flow: initialize the application,
// obtain a component client, and call a method. In a single-process
// deployment (the default when run directly) the call is a local procedure
// call; under the multiprocess deployer the identical code performs an RPC.
func ExampleInit() {
	ctx := context.Background()
	app, err := Init(ctx)
	if err != nil {
		fmt.Println("init:", err)
		return
	}
	defer app.Shutdown(ctx)

	// Greeter and Adder are test components registered in this package's
	// tests; real applications use weavergen-generated registrations.
	greeter, err := Get[Greeter](app)
	if err != nil {
		fmt.Println("get:", err)
		return
	}
	msg, err := greeter.Greet(ctx, "World")
	if err != nil {
		fmt.Println("greet:", err)
		return
	}
	fmt.Println(msg)
	// Output: Hello, World! (6)
}

// ExampleGet demonstrates that Get returns the same client for repeated
// requests of one component.
func ExampleGet() {
	ctx := context.Background()
	app, _ := Init(ctx)
	defer app.Shutdown(ctx)

	a1 := MustGet[Adder](app)
	sum, _ := a1.Add(ctx, 2, 3)
	fmt.Println(sum)
	// Output: 5
}
