package weaver

import (
	"net"
	"reflect"
	"strings"
	"testing"

	"repro/internal/logging"
)

type FillTestComp interface{ M() }

type fillTestImpl struct {
	Implements[FillTestComp]
	Web   Listener `weaver:"storefront"`
	admin Listener // unexported, no tag: name defaults to "admin"
	dep   Ref[Adder]
}

func (f *fillTestImpl) M() {}

func TestFillComponentListenersAndRefs(t *testing.T) {
	var requested []string
	listen := func(name string) (net.Listener, error) {
		requested = append(requested, name)
		return net.Listen("tcp", "127.0.0.1:0")
	}
	resolved := map[string]bool{}
	resolve := func(tp reflect.Type) (any, error) {
		resolved[tp.Name()] = true
		return adderClientStub{}, nil
	}
	impl := &fillTestImpl{}
	logger := logging.New(logging.Options{Sink: logging.Discard})
	if err := FillComponent(impl, "test/FillTestComp", logger, resolve, listen); err != nil {
		t.Fatal(err)
	}

	// Listener names: tag wins, else lowercased field name.
	if len(requested) != 2 || requested[0] != "storefront" || requested[1] != "admin" {
		t.Errorf("listener names = %v", requested)
	}
	if impl.Web.Listener == nil || impl.admin.Listener == nil {
		t.Error("listeners not injected")
	}
	impl.Web.Close()
	impl.admin.Close()

	// Unexported Ref fields are injected too.
	if !resolved["Adder"] {
		t.Errorf("resolved = %v", resolved)
	}
	if impl.dep.Get() == nil {
		t.Error("ref not injected")
	}

	// The Implements embedding got its logger.
	if impl.Logger() == nil {
		t.Error("no logger")
	}
}

func TestFillComponentListenerWithoutProvider(t *testing.T) {
	impl := &fillTestImpl{}
	logger := logging.New(logging.Options{Sink: logging.Discard})
	resolve := func(reflect.Type) (any, error) { return adderClientStub{}, nil }
	err := FillComponent(impl, "test/FillTestComp", logger, resolve, nil)
	if err == nil || !strings.Contains(err.Error(), "no listeners") {
		t.Errorf("err = %v", err)
	}
}

func TestFillComponentNonPointer(t *testing.T) {
	err := FillComponent(fillTestImpl{}, "x", nil, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "struct pointer") {
		t.Errorf("err = %v", err)
	}
}

func TestFillComponentResolveError(t *testing.T) {
	impl := &greeterImpl{}
	logger := logging.New(logging.Options{Sink: logging.Discard})
	resolve := func(reflect.Type) (any, error) {
		return nil, errTestResolve
	}
	err := FillComponent(impl, "test/Greeter", logger, resolve, nil)
	if err == nil || !strings.Contains(err.Error(), "resolve failed") {
		t.Errorf("err = %v", err)
	}
}

type errResolve string

func (e errResolve) Error() string { return string(e) }

var errTestResolve = errResolve("resolve failed")
