package weaver

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/codegen"
	"repro/internal/routing"
)

// The test components below are registered the way weavergen-generated code
// registers real ones; this file is the executable specification for the
// generator's output shape.

type Adder interface {
	Add(ctx context.Context, a, b int) (int, error)
}

type adderImpl struct {
	Implements[Adder]
	inits atomic.Int32
}

func (a *adderImpl) Init(ctx context.Context) error {
	a.inits.Add(1)
	return nil
}

func (a *adderImpl) Add(ctx context.Context, x, y int) (int, error) {
	if x == 13 {
		return 0, errors.New("unlucky")
	}
	return x + y, nil
}

type Greeter interface {
	Greet(ctx context.Context, name string) (string, error)
}

type greeterImpl struct {
	Implements[Greeter]
	adder Ref[Adder]
}

func (g *greeterImpl) Greet(ctx context.Context, name string) (string, error) {
	n, err := g.adder.Get().Add(ctx, len(name), 1)
	if err != nil {
		return "", err
	}
	g.Logger().Info("greeting", "name", name)
	return fmt.Sprintf("Hello, %s! (%d)", name, n), nil
}

// --- registration boilerplate, mirroring weavergen output ---

type adderAddArgs struct {
	P0 int
	P1 int
}

type adderAddRes struct {
	R0     int
	Err    string
	HasErr bool
}

type adderClientStub struct {
	conn codegen.Conn
	add  *codegen.MethodSpec
}

func (s adderClientStub) Add(ctx context.Context, a, b int) (int, error) {
	args := adderAddArgs{P0: a, P1: b}
	var res adderAddRes
	if err := s.conn.Invoke(ctx, "weaver_test/Adder", s.add, &args, &res, 0, false); err != nil {
		return 0, err
	}
	return res.R0, codegen.WireToError(res.Err, res.HasErr)
}

type greeterGreetArgs struct {
	P0 string
}

type greeterGreetRes struct {
	R0     string
	Err    string
	HasErr bool
}

type greeterClientStub struct {
	conn  codegen.Conn
	greet *codegen.MethodSpec
}

func (s greeterClientStub) Greet(ctx context.Context, name string) (string, error) {
	args := greeterGreetArgs{P0: name}
	var res greeterGreetRes
	if err := s.conn.Invoke(ctx, "weaver_test/Greeter", s.greet, &args, &res, 0, false); err != nil {
		return "", err
	}
	return res.R0, codegen.WireToError(res.Err, res.HasErr)
}

func init() {
	adderMethods := []*codegen.MethodSpec{{
		Name:    "Add",
		NewArgs: func() any { return &adderAddArgs{} },
		NewRes:  func() any { return &adderAddRes{} },
		Do: func(ctx context.Context, impl, args, res any) {
			a := args.(*adderAddArgs)
			r := res.(*adderAddRes)
			var err error
			r.R0, err = impl.(Adder).Add(ctx, a.P0, a.P1)
			r.Err, r.HasErr = codegen.ErrorToWire(err)
		},
	}}
	codegen.Register(codegen.Registration{
		Name:    "weaver_test/Adder",
		Iface:   reflect.TypeOf((*Adder)(nil)).Elem(),
		Impl:    reflect.TypeOf(adderImpl{}),
		Methods: adderMethods,
		ClientStub: func(conn codegen.Conn) any {
			return adderClientStub{conn: conn, add: adderMethods[0]}
		},
	})

	greeterMethods := []*codegen.MethodSpec{{
		Name:    "Greet",
		NewArgs: func() any { return &greeterGreetArgs{} },
		NewRes:  func() any { return &greeterGreetRes{} },
		Do: func(ctx context.Context, impl, args, res any) {
			a := args.(*greeterGreetArgs)
			r := res.(*greeterGreetRes)
			var err error
			r.R0, err = impl.(Greeter).Greet(ctx, a.P0)
			r.Err, r.HasErr = codegen.ErrorToWire(err)
		},
	}}
	codegen.Register(codegen.Registration{
		Name:    "weaver_test/Greeter",
		Iface:   reflect.TypeOf((*Greeter)(nil)).Elem(),
		Impl:    reflect.TypeOf(greeterImpl{}),
		Methods: greeterMethods,
		ClientStub: func(conn codegen.Conn) any {
			return greeterClientStub{conn: conn, greet: greeterMethods[0]}
		},
	})
}

func TestSingleProcessHelloWorld(t *testing.T) {
	ctx := context.Background()
	app, err := Init(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Shutdown(ctx)

	greeter, err := Get[Greeter](app)
	if err != nil {
		t.Fatal(err)
	}
	got, err := greeter.Greet(ctx, "World")
	if err != nil {
		t.Fatal(err)
	}
	if got != "Hello, World! (6)" {
		t.Errorf("Greet = %q", got)
	}
}

func TestGetReturnsSameClient(t *testing.T) {
	ctx := context.Background()
	app, err := Init(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Shutdown(ctx)

	a1 := MustGet[Adder](app)
	a2 := MustGet[Adder](app)
	if a1 != a2 {
		t.Error("Get returned distinct clients for the same component")
	}
}

func TestApplicationErrorPropagates(t *testing.T) {
	ctx := context.Background()
	app, err := Init(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Shutdown(ctx)

	adder := MustGet[Adder](app)
	_, err = adder.Add(ctx, 13, 1)
	if err == nil || !strings.Contains(err.Error(), "unlucky") {
		t.Errorf("err = %v, want unlucky", err)
	}
}

func TestRefInjectionAndLocalCalls(t *testing.T) {
	ctx := context.Background()
	app, err := Init(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Shutdown(ctx)

	// Greeter depends on Adder via Ref; a working Greet proves injection.
	g := MustGet[Greeter](app)
	if _, err := g.Greet(ctx, "x"); err != nil {
		t.Fatal(err)
	}

	// The call graph must show greeter -> adder as a local edge.
	edges := app.CallGraph().Edges()
	found := false
	for _, e := range edges {
		if e.Caller == "weaver_test/Greeter" && e.Callee == "weaver_test/Adder" && e.Method == "Add" {
			found = true
			if e.Remote != 0 {
				t.Errorf("local call recorded as remote: %+v", e)
			}
		}
	}
	if !found {
		t.Errorf("greeter->adder edge missing from call graph: %+v", edges)
	}
}

func TestGetUnregisteredInterface(t *testing.T) {
	ctx := context.Background()
	app, err := Init(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Shutdown(ctx)

	type NotAComponent interface{ Nope() }
	_, err = Get[NotAComponent](app)
	if err == nil {
		t.Error("Get of unregistered interface succeeded")
	}
}

func TestFillComponentRejectsMissingImplements(t *testing.T) {
	type bare struct{ X int }
	err := FillComponent(&bare{}, "test/Bare", nil, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "Implements") {
		t.Errorf("err = %v", err)
	}
}

func TestRouterKeyHashing(t *testing.T) {
	// Sanity-check the routing key helper used by generated Shard funcs.
	if routing.KeyHash("user-1") == routing.KeyHash("user-2") {
		t.Error("distinct keys hash equal")
	}
	if routing.KeyHash("user-1") != routing.KeyHash("user-1") {
		t.Error("hash not deterministic")
	}
}
