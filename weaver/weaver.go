// Package weaver implements the programming model proposed in "Towards
// Modern Development of Cloud Applications" (HotOS '23): write a
// distributed application as a single, logically-monolithic binary divided
// into components, and let a runtime decide how the components are
// physically distributed, replicated, and scaled.
//
// A component is declared as a Go interface plus an implementation struct
// that embeds Implements:
//
//	type Hello interface {
//		Greet(ctx context.Context, name string) (string, error)
//	}
//
//	type hello struct {
//		weaver.Implements[Hello]
//	}
//
//	func (h *hello) Greet(ctx context.Context, name string) (string, error) {
//		return fmt.Sprintf("Hello, %s!", name), nil
//	}
//
// Applications are initialized with Init and obtain component clients with
// Get:
//
//	app, err := weaver.Init(ctx)
//	hello, err := weaver.Get[Hello](app)
//	fmt.Println(hello.Greet(ctx, "World"))
//
// Method calls on the returned client are plain procedure calls when the
// callee is co-located with the caller, and remote procedure calls over a
// custom TCP protocol when it is not. The decision is made by the deployer,
// not by this code, and can change between deployments without touching
// application logic — the decoupling of logical and physical boundaries
// that is the heart of the paper.
//
// Component implementations may declare dependencies on other components
// with Ref fields, network listeners with Listener fields, and affinity
// routing with a WithRouter embedding. Non-idempotent methods (payments,
// shipments) can be annotated with a "//weaver:noretry" directive in the
// interface method's doc comment, and the runtime will never retry them on
// transport failures, preserving at-most-once execution. Run "weavergen"
// (cmd/weavergen) over a package to generate the marshaling and stub code
// that makes remote invocation possible; generated files register
// everything with the runtime via the internal codegen registry.
package weaver

import (
	"context"
	"net"
	"reflect"

	"repro/internal/codegen"
	"repro/internal/logging"
)

// Implements is embedded in a component implementation struct to declare
// that the struct implements the component interface T:
//
//	type cache struct {
//		weaver.Implements[Cache]
//		...
//	}
//
// The embedding also gives the implementation access to per-component
// runtime facilities such as its Logger.
type Implements[T any] struct {
	state *implState
}

// implState is injected by the runtime when the component is created.
type implState struct {
	name   string
	logger *logging.Logger
}

// Logger returns a logger scoped to this component. It is safe to call
// from any component method after initialization.
func (i *Implements[T]) Logger() *logging.Logger {
	if i.state == nil || i.state.logger == nil {
		return logging.New(logging.Options{Component: "uninitialized"})
	}
	return i.state.logger
}

// setState is called by the runtime during component construction.
func (i *Implements[T]) setState(s *implState) { i.state = s }

// implemented is a marker method used to verify, at compile time, that an
// implementation struct embeds Implements of the right interface.
func (i *Implements[T]) implemented(T) {}

// stateSetter is the injection hook shared with the fill logic.
type stateSetter interface {
	setState(*implState)
}

// InstanceOf verifies at compile time that an implementation embeds
// Implements[T]. The generator emits assertions like:
//
//	var _ weaver.InstanceOf[Hello] = (*hello)(nil)
type InstanceOf[T any] interface {
	implemented(T)
}

// Ref declares a dependency on the component with interface T. The runtime
// fills Ref fields of an implementation struct before its Init method runs:
//
//	type checkout struct {
//		weaver.Implements[Checkout]
//		cart weaver.Ref[Cart]
//	}
//
//	func (c *checkout) PlaceOrder(ctx context.Context, ...) {
//		items, err := c.cart.Get().Items(ctx, user)
//		...
//	}
type Ref[T any] struct {
	value T
}

// Get returns the referenced component's client.
func (r Ref[T]) Get() T { return r.value }

// setRef is called by the runtime during fill.
func (r *Ref[T]) setRef(v any) { r.value = v.(T) }

// refType reports the referenced interface type.
func (r *Ref[T]) refType() reflect.Type { return reflect.TypeOf((*T)(nil)).Elem() }

type refSetter interface {
	setRef(any)
	refType() reflect.Type
}

// Listener is a network listener field filled by the runtime, so that
// components (typically an HTTP front end) can accept external traffic
// without hard-coding addresses:
//
//	type frontend struct {
//		weaver.Implements[Frontend]
//		web weaver.Listener `weaver:"web"`
//	}
//
// The deployer chooses the address; set WEAVER_LISTEN_<NAME>=host:port to
// pin one.
type Listener struct {
	net.Listener
}

// WithRouter is embedded in a component implementation to enable affinity
// routing (paper §5.2). R is a router type with one method per routed
// component method; each router method takes the same arguments as the
// component method (without the context) and returns the routing key as a
// string:
//
//	type cacheRouter struct{}
//	func (cacheRouter) Get(key string) string { return key }
//
//	type cache struct {
//		weaver.Implements[Cache]
//		weaver.WithRouter[cacheRouter]
//	}
//
// Calls with equal routing keys are directed to the same replica whenever
// the current assignment allows it.
type WithRouter[R any] struct{}

// routerType reports the router type for reflection-based tooling.
func (WithRouter[R]) routerType() reflect.Type { return reflect.TypeOf((*R)(nil)).Elem() }

// RemoteError is the error type received by callers when a remote component
// method returns a non-nil error. Only the message crosses the wire.
type RemoteError = codegen.RemoteError

// Get returns a client for the component with interface T, creating the
// component if necessary (paper Figure 2). The returned value is safe for
// concurrent use by multiple goroutines.
func Get[T any](app *App) (T, error) {
	var zero T
	iface := reflect.TypeOf((*T)(nil)).Elem()
	v, err := app.runtime.Get(app.ctx, iface)
	if err != nil {
		return zero, err
	}
	return v.(T), nil
}

// MustGet is Get, panicking on error. It mirrors the paper's Figure 2
// pseudo-code where initialization errors are fatal.
func MustGet[T any](app *App) T {
	v, err := Get[T](app)
	if err != nil {
		panic(err)
	}
	return v
}

var _ = context.Background // keep context imported for doc examples
