package weaver

import (
	"context"
	"fmt"
	"os"
	"strconv"

	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/metrics"
	"repro/internal/tracing"

	"reflect"

	"repro/internal/callgraph"
)

// An App is a handle on an initialized application, from which component
// clients are obtained with Get.
type App struct {
	ctx      context.Context
	runtime  *core.Runtime
	logger   *logging.Logger
	graph    *callgraph.Collector
	tracer   *tracing.Recorder
	shutdown func(context.Context) error
}

// Init initializes the application (paper Figure 2). The deployment
// environment is discovered from the process environment:
//
//   - Default: single-process deployment. Every component is hosted in
//     this process, and all component method calls are local procedure
//     calls.
//   - WEAVER_PROCLET set: this process was spawned by a multiprocess
//     deployer (cmd/weaver) as a proclet. Init connects to the parent
//     envelope over the inherited pipe, hosts the components assigned by
//     the manager, and — unless this proclet hosts the "main" group —
//     blocks until shutdown.
//
// Application code is identical in all cases; that is the point.
func Init(ctx context.Context) (*App, error) {
	if os.Getenv("WEAVER_DESCRIBE") != "" {
		describeAndExit()
	}
	if os.Getenv("WEAVER_PROCLET") != "" {
		return initProclet(ctx)
	}
	return initSingle(ctx)
}

// initSingle builds a single-process deployment: all components co-located,
// exactly as in the paper's §6.1 co-location experiment.
func initSingle(ctx context.Context) (*App, error) {
	logger := logging.New(logging.Options{Component: "weaver", Replica: "single", Min: logLevel()})
	graph := callgraph.NewCollector()
	tracer := tracing.NewRecorder(10000, traceFraction())

	app := &App{ctx: ctx, logger: logger, graph: graph, tracer: tracer}
	rt := core.NewRuntime(core.Options{
		Hosted: nil, // host everything
		Fill: func(impl any, name string, resolve func(reflect.Type) (any, error)) error {
			return FillComponent(impl, name, logger.With(core.ShortName(name)), resolve, defaultListen)
		},
		Logger:    logger,
		Graph:     graph,
		Tracer:    tracer,
		Metrics:   metrics.Default,
		FastLocal: os.Getenv("WEAVER_FAST_LOCAL") != "",
	})
	app.runtime = rt
	app.shutdown = rt.Shutdown
	return app, nil
}

// logLevel returns the minimum logged severity, from WEAVER_LOG
// ("debug", "info", "warn", "error"; default "info").
func logLevel() logging.Level {
	switch os.Getenv("WEAVER_LOG") {
	case "debug":
		return logging.LevelDebug
	case "warn":
		return logging.LevelWarn
	case "error":
		return logging.LevelError
	default:
		return logging.LevelInfo
	}
}

// traceFraction returns the sampled fraction of traces, from
// WEAVER_TRACE_FRACTION (default: 0.01).
func traceFraction() float64 {
	if v := os.Getenv("WEAVER_TRACE_FRACTION"); v != "" {
		var f float64
		if _, err := fmt.Sscanf(v, "%g", &f); err == nil && f >= 0 && f <= 1 {
			return f
		}
	}
	return 0.01
}

// envInt reads a non-negative integer from the environment, returning 0
// (meaning "unset / unlimited") for missing or malformed values.
func envInt(name string) int {
	v := os.Getenv(name)
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// Shutdown stops the application's components, invoking their Shutdown
// methods where defined.
func (a *App) Shutdown(ctx context.Context) error {
	if a.shutdown == nil {
		return nil
	}
	return a.shutdown(ctx)
}

// Logger returns the application-level logger.
func (a *App) Logger() *logging.Logger { return a.logger }

// CallGraph returns the live call-graph collector for this process. The
// multiprocess manager aggregates collectors across proclets; in a
// single-process deployment this collector sees every call. In proclet
// mode it returns nil: telemetry flows to the manager instead.
func (a *App) CallGraph() *callgraph.Collector { return a.graph }

// Traces returns the process-local trace recorder, or nil in proclet mode
// (spans ship to the manager).
func (a *App) Traces() *tracing.Recorder { return a.tracer }
