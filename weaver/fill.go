package weaver

import (
	"fmt"
	"net"
	"os"
	"reflect"
	"strings"
	"unsafe"

	"repro/internal/logging"
)

// FillComponent injects runtime state into a freshly allocated component
// implementation: the Implements embedding's state, every Ref field's
// client, and every Listener field's network listener. It is exported for
// use by deployer implementations; application code never calls it.
//
// impl must be a pointer to the implementation struct. resolve maps a
// referenced component interface type to its client. listen provides
// listeners by name; a nil listen makes Listener fields an error.
//
// Ref and Listener fields may be unexported (and usually are); they are set
// through unsafe addressing, as the fields belong to the application's own
// struct and the write happens before the component is published.
func FillComponent(
	impl any,
	name string,
	logger *logging.Logger,
	resolve func(reflect.Type) (any, error),
	listen func(name string) (net.Listener, error),
) error {
	p := reflect.ValueOf(impl)
	if p.Kind() != reflect.Pointer || p.IsNil() || p.Elem().Kind() != reflect.Struct {
		return fmt.Errorf("weaver: component %s: implementation must be a non-nil struct pointer, got %T", name, impl)
	}
	v := p.Elem()
	t := v.Type()

	sawImplements := false
	for i := 0; i < t.NumField(); i++ {
		f := v.Field(i)
		sf := t.Field(i)

		// Make unexported fields addressable and interface-able.
		if !f.CanInterface() {
			f = reflect.NewAt(f.Type(), unsafe.Pointer(f.UnsafeAddr())).Elem()
		}
		if !f.CanAddr() {
			continue
		}
		addr := f.Addr().Interface()

		switch x := addr.(type) {
		case stateSetter:
			x.setState(&implState{name: name, logger: logger})
			sawImplements = true
		case refSetter:
			dep := x.refType()
			client, err := resolve(dep)
			if err != nil {
				return fmt.Errorf("weaver: component %s: resolving %s (field %s): %w", name, dep, sf.Name, err)
			}
			x.setRef(client)
		case *Listener:
			lname := sf.Tag.Get("weaver")
			if lname == "" {
				lname = strings.ToLower(sf.Name)
			}
			if listen == nil {
				return fmt.Errorf("weaver: component %s: Listener field %s but deployer provides no listeners", name, sf.Name)
			}
			lis, err := listen(lname)
			if err != nil {
				return fmt.Errorf("weaver: component %s: listener %q: %w", name, lname, err)
			}
			x.Listener = lis
		}
	}
	if !sawImplements {
		return fmt.Errorf("weaver: component %s: implementation does not embed weaver.Implements", name)
	}
	return nil
}

// defaultListen opens a listener for the given name: the address comes from
// WEAVER_LISTEN_<NAME> if set, otherwise an ephemeral localhost port.
func defaultListen(name string) (net.Listener, error) {
	addr := os.Getenv("WEAVER_LISTEN_" + strings.ToUpper(name))
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	return net.Listen("tcp", addr)
}
