package weaver

import (
	"context"
	"fmt"
	"os"
	"reflect"

	"repro/internal/codegen"
	"repro/internal/logging"
	"repro/internal/pipe"
	"repro/internal/proclet"
)

// initProclet initializes the process as a proclet child of a multiprocess
// deployer (paper §4.3): it connects to the envelope over the inherited
// pipe, registers, hosts whatever components the manager assigns, and —
// for every group except "main" — blocks until shutdown so that the
// application's main function runs only in the driver replica.
func initProclet(ctx context.Context) (*App, error) {
	conn, err := pipe.ProcletConn()
	if err != nil {
		return nil, err
	}
	group := os.Getenv("WEAVER_GROUP")
	replica := os.Getenv("WEAVER_REPLICA")
	if group == "" || replica == "" {
		return nil, fmt.Errorf("weaver: WEAVER_PROCLET set but WEAVER_GROUP/WEAVER_REPLICA missing")
	}

	p, err := proclet.Start(ctx, proclet.Options{
		Conn:        conn,
		ProcletID:   replica,
		Group:       group,
		Version:     os.Getenv("WEAVER_VERSION"),
		MaxInflight: envInt("WEAVER_MAX_INFLIGHT"),
		MaxQueue:    envInt("WEAVER_MAX_QUEUE"),
		Fill: func(impl any, name string, logger *logging.Logger, resolve func(reflect.Type) (any, error)) error {
			return FillComponent(impl, name, logger, resolve, defaultListen)
		},
		TraceFraction: traceFraction(),
		Logger:        logging.New(logging.Options{Component: "proclet", Replica: replica, Min: logLevel()}),
	})
	if err != nil {
		return nil, err
	}

	if group != "main" {
		// Non-driver replicas exist only to host components: serve until
		// the envelope shuts us down, then exit the process.
		err := p.Wait()
		if err != nil {
			fmt.Fprintf(os.Stderr, "weaver: proclet terminated: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}

	// The driver replica returns control to the application's main
	// function, with component resolution backed by the proclet. If the
	// deployer shuts the deployment down, exit with it.
	go func() {
		_ = p.Wait()
		os.Exit(0)
	}()

	app := &App{
		ctx:     ctx,
		runtime: p.Runtime(),
		logger:  logging.New(logging.Options{Component: "weaver", Replica: replica, Min: logLevel()}),
		shutdown: func(context.Context) error {
			p.Shutdown(nil)
			return nil
		},
	}
	return app, nil
}

// describeAndExit prints the component inventory, one "name routed" line
// per component, for deployers that introspect the application binary
// (WEAVER_DESCRIBE=1), then exits.
func describeAndExit() {
	for _, reg := range codegen.All() {
		fmt.Printf("%s %t\n", reg.Name, reg.Routed)
	}
	os.Exit(0)
}
