// Weavergen is the weaver code generator (paper §4.2). It scans Go
// packages for component implementations — structs embedding
// weaver.Implements[T] — and writes a weaver_gen.go file into each package
// containing the serialization, stub, and dispatch code that lets the
// runtime invoke those components locally or remotely.
//
// Usage:
//
//	weavergen ./path/to/pkg [more packages...]
//
// Run it again whenever component interfaces change; the generated file is
// compiled into the application binary together with the developer's code.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/generate"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: weavergen <package dir> [package dir...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	exit := 0
	for _, dir := range flag.Args() {
		path, err := generate.GenerateToFile(generate.Options{Dir: dir})
		if err != nil {
			fmt.Fprintf(os.Stderr, "weavergen: %s: %v\n", dir, err)
			exit = 1
			continue
		}
		if path == "" {
			fmt.Fprintf(os.Stderr, "weavergen: %s: no components found\n", dir)
			continue
		}
		fmt.Printf("wrote %s\n", path)
	}
	os.Exit(exit)
}
