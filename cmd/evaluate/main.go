// Evaluate regenerates the paper's evaluation (§6.1) — Table 2, the
// co-location result, and the headline latency/cost ratios — plus the
// supporting experiments indexed in DESIGN.md and EXPERIMENTS.md.
//
// Experiments:
//
//	table2-sim    Table 2 at the paper's 10,000 QPS on the simulated cloud
//	              (cores + median latency for baseline, prototype, and
//	              co-located deployments).
//	table2-local  The same comparison measured for real on this machine:
//	              three deployments of the actual boutique binaries at a
//	              laptop-scale request rate, with CPU consumption read
//	              from /proc.
//	rollout       Cross-version update failures: rolling vs atomic
//	              blue/green rollouts (§4.4, §5.3).
//	placement     Call-graph-driven co-location planning (§5.1): collect
//	              the real boutique call graph, plan groups, and compare
//	              the plan's simulated cost against no co-location.
//	all           Everything above.
//
// Usage:
//
//	go run ./cmd/evaluate -experiment all
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/autoscale"
	"repro/internal/boutique"
	"repro/internal/callgraph"
	"repro/internal/envelope"
	"repro/internal/loadgen"
	"repro/internal/logging"
	"repro/internal/manager"
	"repro/internal/placement"
	"repro/internal/rollout"
	"repro/internal/simcloud"
	"repro/weaver"
)

func main() {
	experiment := flag.String("experiment", "all", "table2-sim | table2-local | rollout | placement | all")
	rate := flag.Float64("rate", 300, "request rate for local measurements (requests/sec)")
	duration := flag.Duration("duration", 15*time.Second, "measured load duration for local experiments")
	simQPS := flag.Float64("simqps", 10000, "request rate for the simulated Table 2")
	bindir := flag.String("bindir", "", "directory for built binaries (default: temp dir)")
	flag.Parse()

	switch *experiment {
	case "table2-sim":
		table2Sim(*simQPS)
	case "table2-local":
		table2Local(*rate, *duration, *bindir)
	case "rollout":
		rolloutExperiment()
	case "placement":
		placementExperiment()
	case "all":
		table2Sim(*simQPS)
		table2Local(*rate, *duration, *bindir)
		rolloutExperiment()
		placementExperiment()
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

// --- Experiment T2 (simulated, paper scale) ---

func table2Sim(qps float64) {
	fmt.Printf("=== Table 2 (simulated cloud, %.0f QPS — paper reports 10000 QPS) ===\n", qps)
	fmt.Printf("%-22s %8s %12s %14s\n", "deployment", "QPS", "avg cores", "median lat")

	type mode struct {
		name   string
		costs  simcloud.CostModel
		groups map[string]string
	}
	modes := []mode{
		{"baseline (status quo)", simcloud.BaselineCosts, nil},
		{"prototype (weaver)", simcloud.WeaverCosts, nil},
		{"prototype co-located", simcloud.WeaverCosts, simcloud.ColocateAll()},
	}
	results := map[string]simcloud.BoutiqueResult{}
	for _, m := range modes {
		r := simcloud.RunBoutique(simcloud.BoutiqueOptions{
			QPS: qps, Costs: m.costs, Groups: m.groups, Seed: 1,
			WarmupSeconds: 120, MeasureSeconds: 60,
		})
		results[m.name] = r
		fmt.Printf("%-22s %8.0f %12.1f %11.2f ms\n", m.name, r.CompletedQPS, r.TotalCores, r.MedianLatency*1e3)
	}
	b, w, c := results[modes[0].name], results[modes[1].name], results[modes[2].name]
	fmt.Printf("\nheadline ratios (paper: cost up to 9x, latency up to 15x):\n")
	fmt.Printf("  cost:    baseline/prototype = %.1fx   baseline/co-located = %.1fx\n",
		b.TotalCores/w.TotalCores, b.TotalCores/c.TotalCores)
	fmt.Printf("  latency: baseline/prototype = %.1fx   baseline/co-located = %.1fx\n\n",
		b.MedianLatency/w.MedianLatency, b.MedianLatency/c.MedianLatency)
}

// --- Experiment T2 (measured locally) ---

// cpuSeconds reads a process's cumulative user+system CPU time from
// /proc/<pid>/stat.
func cpuSeconds(pid int) float64 {
	data, err := os.ReadFile(fmt.Sprintf("/proc/%d/stat", pid))
	if err != nil {
		return 0
	}
	// Fields after the parenthesized comm; utime and stime are fields 14
	// and 15 (1-indexed from the start).
	s := string(data)
	i := strings.LastIndexByte(s, ')')
	if i < 0 {
		return 0
	}
	fields := strings.Fields(s[i+1:])
	if len(fields) < 13 {
		return 0
	}
	utime, _ := strconv.ParseFloat(fields[11], 64) // field 14 overall
	stime, _ := strconv.ParseFloat(fields[12], 64) // field 15
	const clkTck = 100                             // Linux USER_HZ
	return (utime + stime) / clkTck
}

func buildBinaries(bindir string) (boutiqueBin, baselineBin string, err error) {
	if bindir == "" {
		bindir, err = os.MkdirTemp("", "weaver-eval")
		if err != nil {
			return "", "", err
		}
	}
	boutiqueBin = filepath.Join(bindir, "boutique")
	baselineBin = filepath.Join(bindir, "boutique-baseline")
	for target, pkg := range map[string]string{
		boutiqueBin: "./examples/boutique",
		baselineBin: "./cmd/boutique-baseline",
	} {
		cmd := exec.Command("go", "build", "-o", target, pkg)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return "", "", fmt.Errorf("building %s: %w", pkg, err)
		}
	}
	return boutiqueBin, baselineBin, nil
}

type localResult struct {
	name   string
	report *loadgen.Report
	cores  float64
}

func table2Local(rate float64, duration time.Duration, bindir string) {
	fmt.Printf("=== Table 2 (measured on this machine, %.0f QPS for %v) ===\n", rate, duration)
	boutiqueBin, baselineBin, err := buildBinaries(bindir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "evaluate: %v\n", err)
		os.Exit(1)
	}

	var results []localResult
	if r, err := measureBaseline(baselineBin, rate, duration); err != nil {
		fmt.Fprintf(os.Stderr, "baseline: %v\n", err)
	} else {
		results = append(results, r)
	}
	if r, err := measureWeaverMulti(boutiqueBin, rate, duration); err != nil {
		fmt.Fprintf(os.Stderr, "weaver multi: %v\n", err)
	} else {
		results = append(results, r)
	}
	if r, err := measureColocated(boutiqueBin, rate, duration); err != nil {
		fmt.Fprintf(os.Stderr, "colocated: %v\n", err)
	} else {
		results = append(results, r)
	}

	fmt.Printf("%-22s %8s %12s %12s %12s %8s\n", "deployment", "QPS", "avg cores", "median lat", "p99 lat", "errors")
	for _, r := range results {
		fmt.Printf("%-22s %8.0f %12.2f %9.2f ms %9.2f ms %8d\n",
			r.name, r.report.Achieved, r.cores,
			float64(r.report.Quantile(0.5).Microseconds())/1e3,
			float64(r.report.Quantile(0.99).Microseconds())/1e3,
			r.report.Errors)
	}
	if len(results) == 3 {
		fmt.Printf("\nheadline ratios:\n")
		fmt.Printf("  cost:    baseline/prototype = %.1fx   baseline/co-located = %.1fx\n",
			results[0].cores/results[1].cores, results[0].cores/results[2].cores)
		fmt.Printf("  latency: baseline/prototype = %.1fx   baseline/co-located = %.1fx\n\n",
			float64(results[0].report.Quantile(0.5))/float64(results[1].report.Quantile(0.5)),
			float64(results[0].report.Quantile(0.5))/float64(results[2].report.Quantile(0.5)))
	}
}

// waitHealthy polls the storefront until it responds.
func waitHealthy(base string, timeout time.Duration) error {
	target := loadgen.NewHTTPTarget(base)
	deadline := time.Now().Add(timeout)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		err := target.Do(ctx, loadgen.OpIndex, "health", "USD", "OLJCESPC7Z")
		cancel()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("storefront never became healthy: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// runLoadMeasured warms the deployment, then measures latency and the CPU
// consumed by the given pids.
func runLoadMeasured(base string, rate float64, duration time.Duration, pids func() []int) (*loadgen.Report, float64, error) {
	if err := waitHealthy(base, 20*time.Second); err != nil {
		return nil, 0, err
	}
	target := loadgen.NewHTTPTarget(base)
	ctx := context.Background()
	// Warmup.
	loadgen.Run(ctx, target, loadgen.Options{Rate: rate, Duration: 3 * time.Second, Seed: 7})

	before := map[int]float64{}
	for _, pid := range pids() {
		before[pid] = cpuSeconds(pid)
	}
	start := time.Now()
	report := loadgen.Run(ctx, target, loadgen.Options{Rate: rate, Duration: duration, Seed: 42})
	elapsed := time.Since(start).Seconds()

	var cpu float64
	for _, pid := range pids() {
		delta := cpuSeconds(pid) - before[pid]
		if delta > 0 {
			cpu += delta
		}
	}
	return report, cpu / elapsed, nil
}

var baselineServices = []string{
	"AdService", "Cart", "Checkout", "Currency", "Email",
	"Frontend", "Payment", "ProductCatalog", "Recommendation", "Shipping",
}

func measureBaseline(baselineBin string, rate float64, duration time.Duration) (localResult, error) {
	const httpAddr = "127.0.0.1:19099"
	var procs []*exec.Cmd
	defer func() {
		for _, p := range procs {
			_ = p.Process.Kill()
			_ = p.Wait()
		}
	}()
	for _, svc := range baselineServices {
		cmd := exec.Command(baselineBin, "-service", svc, "-baseport", "19100", "-httpaddr", httpAddr)
		cmd.Stderr = nil
		if err := cmd.Start(); err != nil {
			return localResult{}, err
		}
		procs = append(procs, cmd)
	}
	pids := func() []int {
		var out []int
		for _, p := range procs {
			out = append(out, p.Process.Pid)
		}
		return out
	}
	report, cores, err := runLoadMeasured("http://"+httpAddr, rate, duration, pids)
	if err != nil {
		return localResult{}, err
	}
	return localResult{name: "baseline (status quo)", report: report, cores: cores}, nil
}

func measureWeaverMulti(boutiqueBin string, rate float64, duration time.Duration) (localResult, error) {
	const httpAddr = "127.0.0.1:19098"
	inventory, err := describeBinary(boutiqueBin)
	if err != nil {
		return localResult{}, err
	}
	logger := logging.New(logging.Options{Component: "evaluate", Min: logging.LevelError})
	cfg := manager.Config{
		App: "boutique", Version: "v1", Components: inventory,
		DefaultAutoscale: autoscale.Config{MinReplicas: 1, MaxReplicas: 1},
		Logger:           logger,
	}
	env := []string{"WEAVER_LISTEN_BOUTIQUE=" + httpAddr}
	starter := func(ctx context.Context, group, id string, mgr envelope.Manager) (*envelope.Envelope, error) {
		return envelope.Spawn(ctx, envelope.SpawnOptions{
			Binary: boutiqueBin, ID: id, Group: group, Version: "v1", Env: env,
		}, mgr)
	}
	mgr, err := manager.New(cfg, starter)
	if err != nil {
		return localResult{}, err
	}
	defer mgr.Stop()
	ctx := context.Background()
	if _, err := envelope.Spawn(ctx, envelope.SpawnOptions{
		Binary: boutiqueBin, ID: "main/0", Group: "main", Version: "v1", Env: env,
	}, mgr); err != nil {
		return localResult{}, err
	}

	pids := func() []int {
		var out []int
		for _, g := range mgr.Status() {
			for _, r := range g.Replicas {
				if r.Pid > 0 {
					out = append(out, r.Pid)
				}
			}
		}
		return out
	}
	report, cores, err := runLoadMeasured("http://"+httpAddr, rate, duration, pids)
	if err != nil {
		return localResult{}, err
	}
	return localResult{name: "prototype (weaver)", report: report, cores: cores}, nil
}

func measureColocated(boutiqueBin string, rate float64, duration time.Duration) (localResult, error) {
	const httpAddr = "127.0.0.1:19097"
	cmd := exec.Command(boutiqueBin)
	cmd.Env = append(os.Environ(), "WEAVER_LISTEN_BOUTIQUE="+httpAddr)
	if err := cmd.Start(); err != nil {
		return localResult{}, err
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()
	pids := func() []int { return []int{cmd.Process.Pid} }
	report, cores, err := runLoadMeasured("http://"+httpAddr, rate, duration, pids)
	if err != nil {
		return localResult{}, err
	}
	return localResult{name: "prototype co-located", report: report, cores: cores}, nil
}

func describeBinary(binary string) ([]manager.ComponentInfo, error) {
	cmd := exec.Command(binary)
	cmd.Env = append(os.Environ(), "WEAVER_DESCRIBE=1")
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("describing %s: %w", binary, err)
	}
	var inventory []manager.ComponentInfo
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 {
			inventory = append(inventory, manager.ComponentInfo{Name: fields[0], Routed: fields[1] == "true"})
		}
	}
	if len(inventory) == 0 {
		return nil, fmt.Errorf("no components reported")
	}
	return inventory, nil
}

// --- Experiment A5: rollouts ---

func rolloutExperiment() {
	fmt.Printf("=== Cross-version update failures (rolling vs atomic; §4.4/§5.3) ===\n")
	fmt.Printf("%-22s %10s %14s %10s %12s %10s\n", "policy", "requests", "cross-version", "failed", "failure rate", "peak fleet")
	for _, p := range []rollout.Policy{rollout.RollingUnversioned, rollout.RollingTagged, rollout.AtomicUnversioned} {
		r := rollout.Run(p, rollout.Config{Replicas: 10, RequestsPerStep: 2000, Seed: 7})
		fmt.Printf("%-22s %10d %14d %10d %11.2f%% %10d\n",
			r.Policy, r.Total, r.CrossVersion, r.Failed, r.FailureRate*100, r.PeakFleet)
	}
	fmt.Println()
}

// --- Experiment A6: placement ---

func placementExperiment() {
	fmt.Printf("=== Call-graph-driven co-location (§5.1) ===\n")
	// Collect the real call graph by driving the single-process boutique.
	ctx := context.Background()
	app, err := weaver.Init(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "placement: %v\n", err)
		return
	}
	defer app.Shutdown(ctx)
	fe, err := weaver.Get[boutique.Frontend](app)
	if err != nil {
		fmt.Fprintf(os.Stderr, "placement: %v\n", err)
		return
	}
	loadgen.Run(ctx, &loadgen.ComponentTarget{Frontend: fe}, loadgen.Options{Rate: 400, Duration: 3 * time.Second, Seed: 11})

	graph := app.CallGraph().Analyze()
	fmt.Println("chattiest component pairs:")
	for i, p := range graph.ChattyPairs() {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-18s <-> %-18s %7d calls\n", shortName(p.A), shortName(p.B), p.Calls)
	}

	ev := placement.Evaluate(graph, placement.Config{MaxGroupSize: 4})
	fmt.Println("planned groups (cap 4 components/group):")
	groups := map[string]string{}
	for name, comps := range ev.Plan {
		var shorts []string
		for _, c := range comps {
			shorts = append(shorts, shortName(c))
			groups[shortName(c)] = name
		}
		fmt.Printf("  %-4s [%s]\n", name, strings.Join(shorts, ", "))
	}
	fmt.Printf("plan locality score: %.0f%% of calls become local\n", 100*ev.Score)

	// Compare simulated cost: no colocation vs the planned grouping.
	none := simcloud.RunBoutique(simcloud.BoutiqueOptions{QPS: 2000, Costs: simcloud.WeaverCosts, Seed: 5, WarmupSeconds: 60, MeasureSeconds: 40})
	planned := simcloud.RunBoutique(simcloud.BoutiqueOptions{QPS: 2000, Costs: simcloud.WeaverCosts, Groups: groups, Seed: 5, WarmupSeconds: 60, MeasureSeconds: 40})
	fmt.Printf("simulated at 2000 QPS: no-colocation %.1f cores / %.2f ms p50; planned %.1f cores / %.2f ms p50\n\n",
		none.TotalCores, none.MedianLatency*1e3, planned.TotalCores, planned.MedianLatency*1e3)
}

func shortName(full string) string {
	if i := strings.LastIndexByte(full, '/'); i >= 0 {
		return full[i+1:]
	}
	return full
}

var _ = callgraph.Edge{}
