package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/httputil"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/autoscale"
	"repro/internal/envelope"
	"repro/internal/logging"
	"repro/internal/manager"
	"repro/internal/rollout"
	"repro/internal/routing"
)

// rolloutRun implements "weaver rollout run": an atomic blue/green rollout
// between two application binaries (paper §4.4). Both versions run as
// complete, isolated deployments — their components never communicate
// across versions — while a front proxy shifts traffic gradually from old
// to new, pinning each user to one version. When the shift completes, the
// old deployment is torn down.
//
//	weaver rollout run -listener boutique -listen 127.0.0.1:8080 \
//	    -steps 5 -step 3s <old-binary> <new-binary>
func rolloutRun(args []string) {
	fs := flag.NewFlagSet("rollout run", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:8080", "front-door address served across the rollout")
	listenerName := fs.String("listener", "boutique", "weaver.Listener name the app serves HTTP on")
	steps := fs.Int("steps", 5, "number of traffic-shift steps")
	stepDur := fs.Duration("step", 3*time.Second, "duration of each traffic-shift step")
	maxReplicas := fs.Int("max", 4, "autoscaler max replicas per group")
	_ = fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: weaver rollout run [flags] <old-binary> <new-binary>")
		os.Exit(2)
	}
	oldBin, newBin := fs.Arg(0), fs.Arg(1)
	logger := logging.New(logging.Options{Component: "rollout", Min: logging.LevelInfo})

	// Each version gets its own HTTP port behind the proxy.
	oldHTTP := "127.0.0.1:19201"
	newHTTP := "127.0.0.1:19202"

	oldMgr, err := deployVersion(oldBin, "v1", *listenerName, oldHTTP, *maxReplicas, logger)
	if err != nil {
		fatal(err)
	}
	defer oldMgr.Stop()
	if err := waitHTTP(oldHTTP, 30*time.Second); err != nil {
		fatal(fmt.Errorf("old version never became healthy: %w", err))
	}
	logger.Info("old version serving", "binary", oldBin, "addr", oldHTTP)

	// The proxy starts with 100% of traffic on the old version.
	director := rollout.NewDirector("old")
	proxy := newVersionProxy(director, map[rollout.Version]string{"old": oldHTTP, "new": newHTTP})
	go func() {
		if err := http.ListenAndServe(*listen, proxy); err != nil {
			fatal(err)
		}
	}()
	logger.Info("front door serving", "addr", *listen)

	// Bring up the new version as a full fleet (blue/green capacity cost),
	// then shift.
	newMgr, err := deployVersion(newBin, "v2", *listenerName, newHTTP, *maxReplicas, logger)
	if err != nil {
		fatal(err)
	}
	defer newMgr.Stop()
	if err := waitHTTP(newHTTP, 30*time.Second); err != nil {
		fatal(fmt.Errorf("new version never became healthy: %w", err))
	}
	logger.Info("new version serving", "binary", newBin, "addr", newHTTP)

	// The shift schedule is a pure rollout.Plan; this loop only actuates it.
	plan := rollout.Plan{Steps: *steps, Step: *stepDur}
	director.Begin("new")
	for elapsed := time.Duration(0); !plan.Done(elapsed); elapsed += plan.Step {
		w := plan.WeightAt(elapsed)
		director.SetWeight(w)
		logger.Info("traffic shifted", "newVersionWeight", fmt.Sprintf("%.0f%%", w*100))
		time.Sleep(plan.Step)
	}
	director.Finish()
	logger.Info("rollout complete; stopping old version")
	oldMgr.Stop()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Info("shutting down")
}

// deployVersion stands up one complete deployment of a binary.
func deployVersion(binary, version, listenerName, httpAddr string, maxReplicas int, logger *logging.Logger) (*manager.Manager, error) {
	inventory, err := describeBinary(binary)
	if err != nil {
		return nil, err
	}
	env := []string{"WEAVER_LISTEN_" + strings.ToUpper(listenerName) + "=" + httpAddr}
	cfg := manager.Config{
		App:        binary,
		Version:    version,
		Components: inventory,
		DefaultAutoscale: autoscale.Config{
			MinReplicas: 1, MaxReplicas: maxReplicas,
			TargetLoadPerReplica: 200, ScaleDownDelay: 30 * time.Second,
		},
		Logger: logger.With("manager-" + version),
	}
	starter := func(ctx context.Context, group, id string, mgr envelope.Manager) (*envelope.Envelope, error) {
		return envelope.Spawn(ctx, envelope.SpawnOptions{
			Binary: binary, ID: id, Group: group, Version: version, Env: env,
		}, mgr)
	}
	mgr, err := manager.New(cfg, starter)
	if err != nil {
		return nil, err
	}
	if _, err := envelope.Spawn(context.Background(), envelope.SpawnOptions{
		Binary: binary, ID: "main/0", Group: "main", Version: version, Env: env,
	}, mgr); err != nil {
		mgr.Stop()
		return nil, err
	}
	return mgr, nil
}

// newVersionProxy builds the traffic-shifting reverse proxy. Requests are
// pinned to a version by user identity (the "user" query parameter when
// present, else the client address), so a session never straddles versions.
func newVersionProxy(director *rollout.Director, backends map[rollout.Version]string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Query().Get("user")
		if key == "" {
			key = r.RemoteAddr[:strings.LastIndexByte(r.RemoteAddr, ':')]
		}
		v := director.Pick(routing.KeyHash(key))
		backend, ok := backends[v]
		if !ok {
			http.Error(w, "no backend for version "+string(v), http.StatusBadGateway)
			return
		}
		target := &url.URL{Scheme: "http", Host: backend}
		proxy := httputil.NewSingleHostReverseProxy(target)
		w.Header().Set("X-Weaver-Version", string(v))
		proxy.ServeHTTP(w, r)
	})
}

// waitHTTP polls an address until an HTTP server answers.
func waitHTTP(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	client := &http.Client{Timeout: time.Second}
	for {
		resp, err := client.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err == nil {
				return fmt.Errorf("unexpected status")
			}
			return err
		}
		time.Sleep(200 * time.Millisecond)
	}
}
