package main

import (
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestBoutiqueMultiprocessEndToEnd deploys the full eleven-service boutique
// across OS processes (one per component) and drives it with the built-in
// load generator, asserting zero failed requests — the complete §6.1
// pipeline in one test.
func TestBoutiqueMultiprocessEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	weaverBin := buildTool(t, dir, "weaver", "./cmd/weaver")
	boutique := buildTool(t, dir, "boutique", "./examples/boutique")

	cmd := exec.Command(weaverBin, "multi", "run", boutique, "-load", "-rate", "150", "-duration", "4s")
	cmd.Env = append(cmd.Environ(), "WEAVER_LISTEN_BOUTIQUE=127.0.0.1:19400")
	out := &strings.Builder{}
	cmd.Stdout = out
	cmd.Stderr = out
	done := make(chan error, 1)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() { done <- cmd.Wait() }()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("deployment failed: %v\n%s", err, out.String())
		}
	case <-time.After(120 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("deployment hung:\n%s", out.String())
	}

	output := out.String()
	m := regexp.MustCompile(`sent=(\d+) ok=(\d+) err=(\d+)`).FindStringSubmatch(output)
	if m == nil {
		t.Fatalf("no load report in output:\n%s", output)
	}
	sent, _ := strconv.Atoi(m[1])
	okCount, _ := strconv.Atoi(m[2])
	errCount, _ := strconv.Atoi(m[3])
	if sent < 300 {
		t.Errorf("sent = %d, expected several hundred", sent)
	}
	if errCount != 0 || okCount != sent {
		t.Errorf("load errors: sent=%d ok=%d err=%d\n%s", sent, okCount, errCount, output)
	}
	// Every service must have been deployed as its own replica.
	for _, svc := range []string{"Frontend", "Cart", "Checkout", "Currency", "Payment", "ProductCatalog"} {
		if !strings.Contains(output, "group="+svc) {
			t.Errorf("service %s never started:\n%s", svc, firstLines(output, 30))
		}
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
