package main

import (
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestRolloutRunEndToEnd performs a real blue/green rollout: two complete
// boutique deployments (subprocess proclets, TCP data planes) behind the
// traffic-shifting proxy, with requests flowing throughout the shift.
func TestRolloutRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	weaverBin := buildTool(t, dir, "weaver", "./cmd/weaver")
	boutique := buildTool(t, dir, "boutique", "./examples/boutique")

	const front = "127.0.0.1:19300"
	cmd := exec.Command(weaverBin, "rollout", "run",
		"-listen", front, "-listener", "boutique",
		"-steps", "3", "-step", "1s",
		boutique, boutique)
	var out syncBuffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Signal(syscall.SIGTERM)
		_, _ = cmd.Process.Wait()
	}()

	// Wait for the front door.
	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := client.Get("http://" + front + "/healthz?user=probe")
		if err == nil && resp.StatusCode == 200 {
			resp.Body.Close()
			break
		}
		if err == nil {
			resp.Body.Close()
		}
		if time.Now().After(deadline) {
			t.Fatalf("front door never came up:\n%s", out.String())
		}
		time.Sleep(200 * time.Millisecond)
	}

	// Issue requests from many users while the rollout progresses; every
	// request must succeed, and by the end both versions must have served.
	versions := map[string]bool{}
	userVersion := map[string]string{}
	for start := time.Now(); time.Since(start) < 6*time.Second; {
		for u := 0; u < 10; u++ {
			user := fmt.Sprintf("user-%d", u)
			resp, err := client.Get("http://" + front + "/?user=" + user)
			if err != nil {
				t.Fatalf("request during rollout failed: %v\n%s", err, out.String())
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Fatalf("status %d during rollout\n%s", resp.StatusCode, out.String())
			}
			v := resp.Header.Get("X-Weaver-Version")
			versions[v] = true
			// A user that reached "new" must never regress to "old".
			if prev := userVersion[user]; prev == "new" && v == "old" {
				t.Fatalf("user %s regressed from new to old", user)
			}
			userVersion[user] = v
		}
		time.Sleep(150 * time.Millisecond)
	}

	if !versions["old"] || !versions["new"] {
		t.Errorf("versions seen = %v, want both old and new", versions)
	}

	// After the shift completes, everything is on new.
	waitForLog(t, &out, "rollout complete", 30*time.Second)
	for u := 0; u < 10; u++ {
		resp, err := client.Get(fmt.Sprintf("http://%s/?user=user-%d", front, u))
		if err != nil {
			t.Fatalf("request after rollout: %v", err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if v := resp.Header.Get("X-Weaver-Version"); v != "new" {
			t.Errorf("user-%d on %q after completion", u, v)
		}
	}
}

func waitForLog(t *testing.T, out *syncBuffer, substr string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !strings.Contains(out.String(), substr) {
		if time.Now().After(deadline) {
			t.Fatalf("log never contained %q:\n%s", substr, out.String())
		}
		time.Sleep(100 * time.Millisecond)
	}
}

type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
