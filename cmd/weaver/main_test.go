package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/manager"
)

// buildTool compiles a package into dir and returns the binary path.
func buildTool(t *testing.T, dir, name, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found")
		}
		dir = parent
	}
}

// TestMultiRunEndToEnd builds the real deployer and quickstart binaries and
// runs a full multiprocess deployment: manager in the deployer process,
// envelope+proclet subprocesses, Hello served over the data plane.
func TestMultiRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	weaverBin := buildTool(t, dir, "weaver", "./cmd/weaver")
	quickstart := buildTool(t, dir, "quickstart", "./examples/quickstart")

	cmd := exec.Command(weaverBin, "multi", "run", quickstart, "EndToEnd")
	out := &strings.Builder{}
	cmd.Stdout = out
	cmd.Stderr = out
	done := make(chan error, 1)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() { done <- cmd.Wait() }()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("weaver multi run: %v\n%s", err, out.String())
		}
	case <-time.After(60 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("deployment hung:\n%s", out.String())
	}

	output := out.String()
	if !strings.Contains(output, "Hello, EndToEnd!") {
		t.Errorf("missing greeting in output:\n%s", output)
	}
	// The Hello component must have run in its own replica.
	if !strings.Contains(output, "replica registered") || !strings.Contains(output, "group=Hello") {
		t.Errorf("no Hello replica in output:\n%s", output)
	}
}

func TestDescribe(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	weaverBin := buildTool(t, dir, "weaver", "./cmd/weaver")
	quickstart := buildTool(t, dir, "quickstart", "./examples/quickstart")

	out, err := exec.Command(weaverBin, "describe", quickstart).CombinedOutput()
	if err != nil {
		t.Fatalf("describe: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "repro/examples/quickstart/Hello routed=false") {
		t.Errorf("describe output:\n%s", out)
	}
}

func TestResolveComponents(t *testing.T) {
	inventory := []manager.ComponentInfo{
		{Name: "app/pkg/Cart"},
		{Name: "app/pkg/Catalog"},
		{Name: "other/Cart"},
	}
	// Full names resolve.
	got, err := resolveComponents(inventory, []string{"app/pkg/Catalog"})
	if err != nil || len(got) != 1 || got[0] != "app/pkg/Catalog" {
		t.Errorf("full name: %v, %v", got, err)
	}
	// Unique short names resolve.
	got, err = resolveComponents(inventory, []string{"Catalog"})
	if err != nil || len(got) != 1 || got[0] != "app/pkg/Catalog" {
		t.Errorf("short name: %v, %v", got, err)
	}
	// Ambiguous short names are rejected.
	if _, err := resolveComponents(inventory, []string{"Cart"}); err == nil {
		t.Error("ambiguous short name accepted")
	}
	// Unknown names are rejected.
	if _, err := resolveComponents(inventory, []string{"Nope"}); err == nil {
		t.Error("unknown name accepted")
	}
	// Blank entries are skipped.
	got, err = resolveComponents(inventory, []string{" ", "Catalog"})
	if err != nil || len(got) != 1 {
		t.Errorf("blank entry: %v, %v", got, err)
	}
}
