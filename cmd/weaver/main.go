// Weaver is the deployer CLI (paper Figure 3). Its "multi run" subcommand
// deploys an application binary across multiple OS processes on the local
// machine: a global manager in this process, one envelope + subprocess per
// component-group replica, proclets inside the subprocesses, and direct
// proclet-to-proclet TCP for the data plane.
//
// Usage:
//
//	weaver multi run <binary> [arg...]   deploy multiprocess
//	  -colocate "A,B;C,D"   colocation groups (component short names)
//	  -main "A,B"           components hosted in the driver process
//	  -version v1           rollout version label
//	  -target N             autoscaler target calls/sec per replica
//	  -max N                autoscaler max replicas per group
//	  -max-inflight N       per-replica admission limit (0 = unlimited)
//	  -max-queue N          admission wait-queue depth beyond -max-inflight
//	  -status N             print a status report every N seconds
//	  -graph                print the component call graph (dot) at exit
//	  -dashboard addr       serve the web dashboard (status/graph/metrics/
//	                        traces/logs) on addr
//	weaver rollout run <old> <new>       atomic blue/green rollout between
//	                                     two binaries behind a traffic-
//	                                     shifting front proxy (§4.4)
//	weaver describe <binary>             print the binary's components
//	weaver generate <dir> [dir...]       run the code generator
//
// The application binary is unmodified: the same executable runs as every
// replica of every group, discovering its role from the environment the
// envelope sets up.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/autoscale"
	"repro/internal/core"
	"repro/internal/dashboard"
	"repro/internal/envelope"
	"repro/internal/generate"
	"repro/internal/logging"
	"repro/internal/manager"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "multi":
		if len(os.Args) < 3 || os.Args[2] != "run" {
			usage()
		}
		multiRun(os.Args[3:])
	case "rollout":
		if len(os.Args) < 3 || os.Args[2] != "run" {
			usage()
		}
		rolloutRun(os.Args[3:])
	case "describe":
		if len(os.Args) != 3 {
			usage()
		}
		inventory, err := describeBinary(os.Args[2])
		if err != nil {
			fatal(err)
		}
		for _, c := range inventory {
			fmt.Printf("%s routed=%t\n", c.Name, c.Routed)
		}
	case "generate":
		for _, dir := range os.Args[2:] {
			path, err := generate.GenerateToFile(generate.Options{Dir: dir})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  weaver multi run [flags] <binary> [arg...]
  weaver rollout run [flags] <old-binary> <new-binary>
  weaver describe <binary>
  weaver generate <dir> [dir...]
`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "weaver: %v\n", err)
	os.Exit(1)
}

// describeBinary asks an application binary for its component inventory by
// running it with WEAVER_DESCRIBE=1 (the code generator has registered
// every component by init time, so the binary can introspect itself).
func describeBinary(binary string) ([]manager.ComponentInfo, error) {
	cmd := exec.Command(binary)
	cmd.Env = append(os.Environ(), "WEAVER_DESCRIBE=1")
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("describing %s: %w", binary, err)
	}
	var inventory []manager.ComponentInfo
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		inventory = append(inventory, manager.ComponentInfo{Name: fields[0], Routed: fields[1] == "true"})
	}
	if len(inventory) == 0 {
		return nil, fmt.Errorf("%s reports no components (did you run weavergen?)", binary)
	}
	return inventory, nil
}

// resolveComponents maps component short names to full names.
func resolveComponents(inventory []manager.ComponentInfo, names []string) ([]string, error) {
	var out []string
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		var match string
		for _, c := range inventory {
			if c.Name == n || core.ShortName(c.Name) == n {
				if match != "" {
					return nil, fmt.Errorf("component name %q is ambiguous", n)
				}
				match = c.Name
			}
		}
		if match == "" {
			return nil, fmt.Errorf("unknown component %q", n)
		}
		out = append(out, match)
	}
	return out, nil
}

func multiRun(args []string) {
	fs := flag.NewFlagSet("multi run", flag.ExitOnError)
	colocate := fs.String("colocate", "", `colocation groups, e.g. "Cart,Catalog;Checkout"`)
	mainComps := fs.String("main", "", "components hosted in the driver process")
	version := fs.String("version", "v1", "rollout version label")
	target := fs.Float64("target", 200, "autoscaler target calls/sec per replica")
	maxReplicas := fs.Int("max", 8, "autoscaler max replicas per group")
	statusEvery := fs.Int("status", 0, "print status every N seconds (0 = off)")
	dumpGraph := fs.Bool("graph", false, "print the component call graph (dot) at exit")
	dashAddr := fs.String("dashboard", "", `serve the deployment dashboard on this address (e.g. "127.0.0.1:8900")`)
	maxInflight := fs.Int("max-inflight", 0, "per-replica data-plane admission limit (0 = unlimited)")
	maxQueue := fs.Int("max-queue", 0, "per-replica admission wait-queue depth beyond -max-inflight")
	replaceEvery := fs.Duration("replace", 0, "live re-placement planning interval (0 = off), e.g. 10s")
	_ = fs.Parse(args)
	if fs.NArg() < 1 {
		usage()
	}
	binary := fs.Arg(0)
	binArgs := fs.Args()[1:]

	inventory, err := describeBinary(binary)
	if err != nil {
		fatal(err)
	}

	groups := map[string][]string{}
	if *colocate != "" {
		for i, spec := range strings.Split(*colocate, ";") {
			comps, err := resolveComponents(inventory, strings.Split(spec, ","))
			if err != nil {
				fatal(err)
			}
			if len(comps) == 0 {
				continue
			}
			groups[fmt.Sprintf("group%d", i+1)] = comps
		}
	}
	if *mainComps != "" {
		comps, err := resolveComponents(inventory, strings.Split(*mainComps, ","))
		if err != nil {
			fatal(err)
		}
		groups["main"] = comps
	}

	logger := logging.New(logging.Options{Component: "deployer", Min: logging.LevelInfo})
	cfg := manager.Config{
		App:        binary,
		Version:    *version,
		Components: inventory,
		Groups:     groups,
		DefaultAutoscale: autoscale.Config{
			MinReplicas:          1,
			MaxReplicas:          *maxReplicas,
			TargetLoadPerReplica: *target,
			ScaleDownDelay:       30 * time.Second,
		},
		MaxInflightPerReplica: *maxInflight,
		MaxOverloadQueue:      *maxQueue,
		PlacementInterval:     *replaceEvery,
		Logger:                logger,
	}

	// Admission limits reach subprocess proclets through the environment
	// (the in-process deployer passes them through proclet.Options).
	var limitEnv []string
	if cfg.MaxInflightPerReplica > 0 {
		limitEnv = append(limitEnv, fmt.Sprintf("WEAVER_MAX_INFLIGHT=%d", cfg.MaxInflightPerReplica))
	}
	if cfg.MaxOverloadQueue > 0 {
		limitEnv = append(limitEnv, fmt.Sprintf("WEAVER_MAX_QUEUE=%d", cfg.MaxOverloadQueue))
	}

	starter := func(ctx context.Context, group, id string, mgr envelope.Manager) (*envelope.Envelope, error) {
		return envelope.Spawn(ctx, envelope.SpawnOptions{
			Binary:  binary,
			Args:    binArgs,
			ID:      id,
			Group:   group,
			Version: *version,
			Env:     limitEnv,
		}, mgr)
	}

	mgr, err := manager.New(cfg, starter)
	if err != nil {
		fatal(err)
	}

	if *dashAddr != "" {
		addr, err := dashboard.Serve(mgr, *dashAddr)
		if err != nil {
			mgr.Stop()
			fatal(err)
		}
		logger.Info("dashboard serving", "addr", "http://"+addr)
	}

	ctx := context.Background()
	// Launch the driver replica; it is the subprocess in which the
	// application's main function actually runs.
	mainEnv, err := envelope.Spawn(ctx, envelope.SpawnOptions{
		Binary:  binary,
		Args:    binArgs,
		ID:      "main/0",
		Group:   "main",
		Version: *version,
		Env:     limitEnv,
	}, mgr)
	if err != nil {
		mgr.Stop()
		fatal(err)
	}
	logger.Info("deployment started", "binary", binary, "version", *version)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	var statusTick <-chan time.Time
	if *statusEvery > 0 {
		t := time.NewTicker(time.Duration(*statusEvery) * time.Second)
		defer t.Stop()
		statusTick = t.C
	}

loop:
	for {
		select {
		case <-mainEnv.Done():
			logger.Info("driver exited; shutting down deployment")
			break loop
		case s := <-sig:
			logger.Info("signal received; shutting down", "signal", s.String())
			break loop
		case <-statusTick:
			printStatus(mgr)
		}
	}

	if *dumpGraph {
		fmt.Println(mgr.Graph().Analyze().Dot())
	}
	mgr.Stop()
}

func printStatus(mgr *manager.Manager) {
	fmt.Println("=== deployment status ===")
	for _, g := range mgr.Status() {
		shorts := make([]string, len(g.Components))
		for i, c := range g.Components {
			shorts[i] = core.ShortName(c)
		}
		sort.Strings(shorts)
		fmt.Printf("group %-16s components=[%s]\n", g.Name, strings.Join(shorts, ","))
		for _, r := range g.Replicas {
			health := "healthy"
			if !r.Healthy {
				health = "UNHEALTHY"
			}
			fmt.Printf("  %-14s pid=%-7d addr=%-21s %-9s %.1f calls/s\n", r.ID, r.Pid, r.Addr, health, r.Rate)
		}
	}
}
