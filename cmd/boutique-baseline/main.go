// Boutique-baseline runs the Online Boutique as a conventional
// microservice deployment: one service per OS process, communicating over
// a self-describing, versioned protocol (HTTP/1.1 + JSON) with statically
// configured endpoints. It is the "status quo" side of the paper's Table 2
// comparison — the role gRPC + Kubernetes play for the original demo.
//
// Every service gets a fixed port derived from -baseport, so no service
// discovery is needed:
//
//	for s in ProductCatalog Currency Cart Recommendation Shipping \
//	         Payment Email Checkout AdService Frontend; do
//	  boutique-baseline -service $s -baseport 9100 &
//	done
//
// The frontend additionally serves the storefront HTTP API on
// -httpaddr (default 127.0.0.1:9099).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"reflect"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/httprpc"
	"repro/internal/logging"
	"repro/internal/metrics"
	"repro/internal/routing"
	"repro/weaver"

	_ "repro/internal/boutique" // registers the components
)

// serviceOrder fixes each service's port offset from -baseport.
var serviceOrder = []string{
	"AdService", "Cart", "Checkout", "Currency", "Email",
	"Frontend", "Payment", "ProductCatalog", "Recommendation", "Shipping",
}

func main() {
	service := flag.String("service", "", "short name of the service to run (required)")
	basePort := flag.Int("baseport", 9100, "first port of the service port range")
	httpAddr := flag.String("httpaddr", "127.0.0.1:9099", "storefront HTTP address (Frontend only)")
	flag.Parse()
	if *service == "" {
		fmt.Fprintln(os.Stderr, "boutique-baseline: -service is required; one of", serviceOrder)
		os.Exit(2)
	}

	ports := map[string]int{}
	for i, s := range serviceOrder {
		ports[s] = *basePort + i
	}
	port, ok := ports[*service]
	if !ok {
		log.Fatalf("unknown service %q", *service)
	}

	// Resolve short names to registrations.
	regs := map[string]*codegen.Registration{}
	for _, reg := range codegen.All() {
		regs[core.ShortName(reg.Name)] = reg
	}
	reg, ok := regs[*service]
	if !ok {
		log.Fatalf("service %q is not a registered component", *service)
	}

	logger := logging.New(logging.Options{Component: "baseline", Replica: *service, Min: logging.LevelInfo})

	// The baseline runtime hosts exactly one service; every other
	// component is reached over HTTP+JSON at its well-known port.
	rt := core.NewRuntime(core.Options{
		Hosted: func(name string) bool { return name == reg.Name },
		RemoteConn: func(dep *codegen.Registration) (codegen.Conn, error) {
			depPort, ok := ports[core.ShortName(dep.Name)]
			if !ok {
				return nil, fmt.Errorf("no port for %s", dep.Name)
			}
			addr := fmt.Sprintf("127.0.0.1:%d", depPort)
			// The baseline has one replica per service; affinity routing
			// degenerates to that single endpoint, as in the original demo
			// before autoscaling kicks in.
			return httprpc.NewConn(dep.Name, routing.NewRoundRobin(addr)), nil
		},
		Fill: func(impl any, name string, resolve func(reflect.Type) (any, error)) error {
			return weaver.FillComponent(impl, name, logger.With(core.ShortName(name)), resolve, func(string) (net.Listener, error) {
				return net.Listen("tcp", *httpAddr)
			})
		},
		Logger: logger,
	})

	ctx := context.Background()
	impl, err := rt.LocalImpl(ctx, reg.Name)
	if err != nil {
		log.Fatalf("initializing %s: %v", *service, err)
	}

	srv := httprpc.NewServer()
	srv.Host(reg, impl, metrics.Default.Counter("baseline.served."+*service))
	addr, err := srv.Listen(fmt.Sprintf("127.0.0.1:%d", port))
	if err != nil {
		log.Fatalf("listening: %v", err)
	}
	logger.Info("baseline service up", "service", *service, "addr", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	_ = srv.Close()
	_ = rt.Shutdown(ctx)
}
