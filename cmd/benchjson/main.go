// Command benchjson converts `go test -bench` output on stdin into a JSON
// record of benchmark results. `make bench-json` uses it to snapshot the
// data-plane microbenchmarks into BENCH_rpc.json so experiment results
// (EXPERIMENTS.md A9) are machine-readable and diffable across PRs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// A Result is one benchmark line, e.g.
//
//	BenchmarkTransport/WeaverTCP-8  92558  12607 ns/op  1832 B/op  18 allocs/op
type Result struct {
	Pkg        string             `json:"pkg,omitempty"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	var results []Result
	var pkg string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{
			Pkg:        pkg,
			Name:       strings.TrimSuffix(fields[0], fmt.Sprintf("-%d", maxProcsSuffix(fields[0]))),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		if len(r.Metrics) > 0 {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(map[string]any{"results": results}, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')

	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
}

// maxProcsSuffix extracts the trailing -N GOMAXPROCS suffix of a benchmark
// name, or 0 if there is none.
func maxProcsSuffix(name string) int {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil {
		return 0
	}
	return n
}
