.PHONY: check build vet test race bench

# Tier-1 verification: everything a PR must keep green.
check: vet build race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -run xxx -bench . -benchtime 1x .
