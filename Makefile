.PHONY: check build vet lint test race allocs bench bench-json sim sim-soak

# Tier-1 verification: everything a PR must keep green.
check: vet lint build race allocs sim

# Lint gate: gofmt cleanliness, plus the control plane's single-routing-site
# invariant (DESIGN.md §14): routing-mutation envelope calls inside
# internal/manager may appear only in the actuator.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt: files need formatting:"; echo "$$out"; exit 1; fi
	@out=$$(grep -rn -E 'SendRoutingInfo|CallRoutingInfo|PushRoutingInfo' \
		--include='*.go' internal/manager \
		| grep -v '^internal/manager/actuator\.go:' || true); \
	if [ -n "$$out" ]; then \
		echo "routing mutation outside internal/manager/actuator.go:"; \
		echo "$$out"; exit 1; fi

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# Allocation-budget gates for the zero-copy data plane (DESIGN.md §9).
# They must run without -race: the detector makes sync.Pool drop Puts at
# random, so alloc counts are only meaningful in a plain build.
allocs:
	go test -run 'TestAllocs' -count=1 ./internal/rpc

# Deterministic simulation smoke campaign (DESIGN.md §11): fixed seeds,
# race detector on. A failure prints the seed and a shrunk op trace;
# replay it with `go test ./internal/sim -run TestSimSeed -sim.seed=N`.
sim:
	go test -race -count=1 -run 'TestSim|TestGenerate' ./internal/sim

# Open-ended nightly campaign: SIM_SEEDS consecutive seeds starting at
# SIM_BASE (defaults to the current time, logged per seed, so any failure
# is still reproducible from the log).
SIM_SEEDS ?= 50
SIM_BASE  ?= $(shell date +%s)
sim-soak:
	go test -race -count=1 -timeout 0 -run TestSimSoak -v ./internal/sim \
		-sim.seeds=$(SIM_SEEDS) -sim.base=$(SIM_BASE)

bench:
	go test -run xxx -bench . -benchtime 1x .

# bench-json runs the data-plane microbenchmarks and records them as
# machine-readable JSON in BENCH_rpc.json (EXPERIMENTS.md A9), and the
# placement planner benchmark in BENCH_placement.json (EXPERIMENTS.md A6/A10).
bench-json:
	go test -run xxx -bench 'BenchmarkTransport|BenchmarkCall|BenchmarkPriority|BenchmarkReadBatch' -benchmem ./internal/rpc . | go run ./cmd/benchjson -out BENCH_rpc.json
	go test -run xxx -bench 'BenchmarkPlacement' -benchmem . | go run ./cmd/benchjson -out BENCH_placement.json
