// Benchmarks regenerating the paper's evaluation (§6.1) and the ablations
// indexed in DESIGN.md §5. Each benchmark maps to one table, figure, or
// design claim:
//
//	BenchmarkTable2Sim         Table 2 on the simulated cloud (T2/T2b/H1)
//	BenchmarkBoutiqueEndToEnd  Table 2's latency story measured on real
//	                           deployments in this process (T2 local)
//	BenchmarkCodec             ablation A1: unversioned vs tagged vs JSON
//	BenchmarkTransport         ablation A2: custom TCP vs HTTP/1.1+JSON
//	BenchmarkTransportThroughput  ablation A12: calls/s at 1/8/64 callers
//	BenchmarkColocationSweep   ablation A3: 1..10 colocation groups
//	BenchmarkAffinityRouting   ablation A4: §5.2 affinity benefit
//	BenchmarkRollout           ablation A5: §4.4 rolling vs atomic updates
//	BenchmarkPlacement         ablation A6: §5.1 planning cost
//	BenchmarkAdmissionControl  ablation A8: admission-control overhead
//	BenchmarkHedgedTailLatency ablation A8: §5 hedging vs tail latency
//
// Custom metrics: cores (avg provisioned cores), p50_ms (median latency),
// hit_rate (cache hits/lookups), failure_rate (failed/total requests).
package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/autoscale"
	"repro/internal/boutique"
	"repro/internal/codec"
	"repro/internal/codec/tagged"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/loadgen"
	"repro/internal/logging"
	"repro/internal/manager"
	"repro/internal/placement"
	"repro/internal/rollout"
	"repro/internal/routing"
	"repro/internal/rpc"
	"repro/internal/simcloud"
	"repro/weaver"

	"repro/internal/callgraph"
)

// --- T2: Table 2 on the simulated cloud ---

func BenchmarkTable2Sim(b *testing.B) {
	// The full 10k QPS run takes minutes; benchmarks use 2000 QPS, which
	// preserves every ratio (see EXPERIMENTS.md for the 10k numbers from
	// cmd/evaluate).
	const qps = 2000
	modes := []struct {
		name   string
		costs  simcloud.CostModel
		groups map[string]string
	}{
		{"Baseline", simcloud.BaselineCosts, nil},
		{"Weaver", simcloud.WeaverCosts, nil},
		{"Colocated", simcloud.WeaverCosts, simcloud.ColocateAll()},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			var last simcloud.BoutiqueResult
			for i := 0; i < b.N; i++ {
				last = simcloud.RunBoutique(simcloud.BoutiqueOptions{
					QPS: qps, Costs: m.costs, Groups: m.groups, Seed: 1,
					WarmupSeconds: 60, MeasureSeconds: 40,
				})
			}
			b.ReportMetric(last.TotalCores, "cores")
			b.ReportMetric(last.MedianLatency*1e3, "p50_ms")
			b.ReportMetric(last.CompletedQPS, "qps")
		})
	}
}

// --- T2 local: end-to-end boutique operations on real deployments ---

func benchFill(impl any, name string, logger *logging.Logger, resolve func(reflect.Type) (any, error)) error {
	listen := func(string) (net.Listener, error) { return net.Listen("tcp", "127.0.0.1:0") }
	return weaver.FillComponent(impl, name, logger, resolve, listen)
}

// startBoutique deploys the boutique in this process: colocated=true puts
// all components in one group (plain method calls); false gives every
// component its own proclet (RPCs over real TCP).
func startBoutique(b *testing.B, colocated bool) (boutique.Frontend, func()) {
	b.Helper()
	ctx := context.Background()
	cfg := manager.Config{
		App:              "bench",
		DefaultAutoscale: autoscale.Config{MinReplicas: 1, MaxReplicas: 1},
		Logger:           logging.New(logging.Options{Component: "manager", Min: logging.LevelError}),
	}
	if colocated {
		var all []string
		for _, c := range deploy.Inventory() {
			all = append(all, c.Name)
		}
		cfg.Groups = map[string][]string{"app": all}
	}
	d, err := deploy.StartInProcess(ctx, deploy.Options{Config: cfg, Fill: benchFill})
	if err != nil {
		b.Fatal(err)
	}
	fe, err := deploy.Get[boutique.Frontend](ctx, d)
	if err != nil {
		d.Stop()
		b.Fatal(err)
	}
	// Prime every call path.
	target := &loadgen.ComponentTarget{Frontend: fe}
	for _, op := range []loadgen.Op{loadgen.OpIndex, loadgen.OpBrowse, loadgen.OpAddToCart, loadgen.OpViewCart, loadgen.OpCheckout} {
		if err := target.Do(ctx, op, "bench-user", "USD", "OLJCESPC7Z"); err != nil {
			d.Stop()
			b.Fatal(err)
		}
	}
	return fe, d.Stop
}

func BenchmarkBoutiqueEndToEnd(b *testing.B) {
	for _, mode := range []struct {
		name      string
		colocated bool
	}{
		{"Distributed", false},
		{"Colocated", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			fe, stop := startBoutique(b, mode.colocated)
			defer stop()
			ctx := context.Background()
			ops := []struct {
				name string
				fn   func() error
			}{
				{"Home", func() error { _, err := fe.Home(ctx, "u", "USD"); return err }},
				{"Browse", func() error { _, err := fe.Product(ctx, "u", "OLJCESPC7Z", "EUR"); return err }},
				{"ViewCart", func() error { _, err := fe.ViewCart(ctx, "u", "USD"); return err }},
			}
			for _, op := range ops {
				b.Run(op.name, func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if err := op.fn(); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// --- A1: serialization formats ---

// benchOrder is a boutique-checkout-shaped payload.
func benchOrder() boutique.Order {
	return boutique.Order{
		OrderID:            "ORD-00004217",
		ShippingTrackingID: "TRK-00AB12CD34EF",
		ShippingCost:       boutique.Money{CurrencyCode: "USD", Units: 8, Nanos: 990000000},
		ShippingAddress: boutique.Address{
			StreetAddress: "1600 Amphitheatre Parkway",
			City:          "Mountain View", State: "CA", Country: "USA", ZipCode: 94043,
		},
		Items: []boutique.OrderItem{
			{Item: boutique.CartItem{ProductID: "OLJCESPC7Z", Quantity: 2}, Cost: boutique.Money{CurrencyCode: "USD", Units: 39, Nanos: 980000000}},
			{Item: boutique.CartItem{ProductID: "6E92ZMYYFZ", Quantity: 1}, Cost: boutique.Money{CurrencyCode: "USD", Units: 8, Nanos: 990000000}},
			{Item: boutique.CartItem{ProductID: "1YMWWN1N4O", Quantity: 1}, Cost: boutique.Money{CurrencyCode: "USD", Units: 109, Nanos: 990000000}},
		},
		Total: boutique.Money{CurrencyCode: "USD", Units: 167, Nanos: 950000000},
	}
}

// taggedOrder mirrors benchOrder for the tagged codec (field numbers).
type taggedMoney struct {
	CurrencyCode string `tag:"1"`
	Units        int64  `tag:"2"`
	Nanos        int32  `tag:"3"`
}

type taggedItem struct {
	ProductID string      `tag:"1"`
	Quantity  int32       `tag:"2"`
	Cost      taggedMoney `tag:"3"`
}

type taggedOrder struct {
	OrderID            string       `tag:"1"`
	ShippingTrackingID string       `tag:"2"`
	ShippingCost       taggedMoney  `tag:"3"`
	Street             string       `tag:"4"`
	City               string       `tag:"5"`
	State              string       `tag:"6"`
	Country            string       `tag:"7"`
	Zip                int32        `tag:"8"`
	Items              []taggedItem `tag:"9"`
	Total              taggedMoney  `tag:"10"`
}

func benchTaggedOrder() taggedOrder {
	o := benchOrder()
	t := taggedOrder{
		OrderID:            o.OrderID,
		ShippingTrackingID: o.ShippingTrackingID,
		ShippingCost:       taggedMoney{o.ShippingCost.CurrencyCode, o.ShippingCost.Units, o.ShippingCost.Nanos},
		Street:             o.ShippingAddress.StreetAddress,
		City:               o.ShippingAddress.City,
		State:              o.ShippingAddress.State,
		Country:            o.ShippingAddress.Country,
		Zip:                o.ShippingAddress.ZipCode,
		Total:              taggedMoney{o.Total.CurrencyCode, o.Total.Units, o.Total.Nanos},
	}
	for _, it := range o.Items {
		t.Items = append(t.Items, taggedItem{it.Item.ProductID, it.Item.Quantity, taggedMoney{it.Cost.CurrencyCode, it.Cost.Units, it.Cost.Nanos}})
	}
	return t
}

func BenchmarkCodec(b *testing.B) {
	order := benchOrder()
	torder := benchTaggedOrder()

	b.Run("WeaverUnversioned", func(b *testing.B) {
		b.ReportAllocs()
		data := codec.Marshal(order)
		b.ReportMetric(float64(len(data)), "wire_bytes")
		var out boutique.Order
		for i := 0; i < b.N; i++ {
			var e codec.Encoder
			codec.EncodePtr(&e, &order)
			if err := codec.Unmarshal(e.Data(), &out); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("TaggedProtoLike", func(b *testing.B) {
		b.ReportAllocs()
		data, err := tagged.Marshal(torder)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(data)), "wire_bytes")
		for i := 0; i < b.N; i++ {
			data, err := tagged.Marshal(torder)
			if err != nil {
				b.Fatal(err)
			}
			var out taggedOrder
			if err := tagged.Unmarshal(data, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("JSON", func(b *testing.B) {
		b.ReportAllocs()
		data, err := json.Marshal(order)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(data)), "wire_bytes")
		for i := 0; i < b.N; i++ {
			data, err := json.Marshal(order)
			if err != nil {
				b.Fatal(err)
			}
			var out boutique.Order
			if err := json.Unmarshal(data, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- A2: transports ---

func BenchmarkTransport(b *testing.B) {
	order := benchOrder()

	b.Run("WeaverTCP", func(b *testing.B) {
		// The production data-plane path: a framed handler answering from
		// a pooled encoder, and the zero-copy CallFramed client API that
		// generated stubs use via core.DataPlaneConn.
		srv := rpc.NewServer()
		srv.RegisterFramed("bench.Echo", func(ctx context.Context, args []byte) ([]byte, rpc.BufOwner, error) {
			enc := codec.GetEncoder()
			enc.Reserve(rpc.ResponseHeadroom)
			enc.Raw(args)
			return enc.Framed(), enc, nil
		})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		client := rpc.NewClient(addr, rpc.ClientOptions{})
		defer client.Close()
		ctx := context.Background()
		payload := codec.Marshal(order)
		method := rpc.MethodKey("bench.Echo")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			enc := codec.GetEncoder()
			enc.Reserve(rpc.PayloadHeadroom)
			enc.Raw(payload)
			resp, err := client.CallFramed(ctx, method, enc.Framed(), rpc.CallOptions{})
			if err != nil {
				b.Fatal(err)
			}
			resp.Release()
			codec.PutEncoder(enc)
		}
		b.ReportMetric(float64(len(payload)), "payload_bytes")
	})

	b.Run("WeaverTCPCompressed", func(b *testing.B) {
		// §5.1's optional wire compression, on a large compressible
		// payload (a product-catalog-sized response).
		srv := rpc.NewServer()
		srv.Register("bench.EchoC", func(ctx context.Context, args []byte) ([]byte, error) {
			out := make([]byte, len(args))
			copy(out, args)
			return out, nil
		})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		client := rpc.NewClient(addr, rpc.ClientOptions{Compress: true})
		defer client.Close()
		ctx := context.Background()
		var products []boutique.Product
		for i := 0; i < 40; i++ {
			products = append(products, boutique.Product{
				ID: fmt.Sprintf("PROD-%04d", i), Name: "Widget",
				Description: "A description that repeats across the catalog payload.",
				Price:       boutique.Money{CurrencyCode: "USD", Units: int64(i), Nanos: 990000000},
				Categories:  []string{"catalog", "bench"},
			})
		}
		payload := codec.Marshal(products)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.Call(ctx, rpc.MethodKey("bench.EchoC"), payload, rpc.CallOptions{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(payload)), "payload_bytes")
	})

	b.Run("HTTPJSON", func(b *testing.B) {
		// The status-quo stack carrying the same logical payload.
		reg, ok := findRegistration("repro/internal/boutique/Email")
		if !ok {
			b.Skip("boutique registration not found")
		}
		_ = reg
		// Measure a minimal HTTP+JSON round trip through net/http, the
		// same path internal/httprpc uses.
		mux := newEchoHTTP()
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer lis.Close()
		go serveHTTP(lis, mux)
		payload, _ := json.Marshal(order)
		client := newHTTPClient()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := postJSON(client, "http://"+lis.Addr().String()+"/echo", payload); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(payload)), "payload_bytes")
	})
}

// BenchmarkTransportParallel measures throughput under concurrency: many
// goroutines multiplexed over the weaver client's striped connections.
func BenchmarkTransportParallel(b *testing.B) {
	srv := rpc.NewServer()
	srv.RegisterFramed("bench.EchoP", func(ctx context.Context, args []byte) ([]byte, rpc.BufOwner, error) {
		enc := codec.GetEncoder()
		enc.Reserve(rpc.ResponseHeadroom)
		enc.Raw(args)
		return enc.Framed(), enc, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client := rpc.NewClient(addr, rpc.ClientOptions{NumConns: 4})
	defer client.Close()
	payload := codec.Marshal(benchOrder())
	ctx := context.Background()
	method := rpc.MethodKey("bench.EchoP")
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			enc := codec.GetEncoder()
			enc.Reserve(rpc.PayloadHeadroom)
			enc.Raw(payload)
			resp, err := client.CallFramed(ctx, method, enc.Framed(), rpc.CallOptions{})
			if err != nil {
				b.Fatal(err)
			}
			resp.Release()
			codec.PutEncoder(enc)
		}
	})
}

// BenchmarkTransportThroughput measures sustained call throughput at fixed
// caller counts (ablation A12 in EXPERIMENTS.md): each caller goroutine
// keeps exactly one call outstanding, so the 1-caller case exposes lone-call
// latency (the coalescer must flush immediately when the pipe is idle) while
// 8 and 64 callers exercise group commit — concurrent frames riding one
// vectored write — across the client's default connection stripes.
func BenchmarkTransportThroughput(b *testing.B) {
	for _, callers := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("Callers%d", callers), func(b *testing.B) {
			srv := rpc.NewServer()
			srv.RegisterFramed("bench.EchoT", func(ctx context.Context, args []byte) ([]byte, rpc.BufOwner, error) {
				enc := codec.GetEncoder()
				enc.Reserve(rpc.ResponseHeadroom)
				enc.Raw(args)
				return enc.Framed(), enc, nil
			})
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			client := rpc.NewClient(addr, rpc.ClientOptions{}) // default stripes
			defer client.Close()
			payload := codec.Marshal(benchOrder())
			ctx := context.Background()
			method := rpc.MethodKey("bench.EchoT")

			// Warm every stripe before the clock starts.
			for i := 0; i < 8; i++ {
				enc := codec.GetEncoder()
				enc.Reserve(rpc.PayloadHeadroom)
				enc.Raw(payload)
				resp, err := client.CallFramed(ctx, method, enc.Framed(), rpc.CallOptions{})
				if err != nil {
					b.Fatal(err)
				}
				resp.Release()
				codec.PutEncoder(enc)
			}

			var calls atomic.Int64
			var failed atomic.Value
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			for w := 0; w < callers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for calls.Add(1) <= int64(b.N) {
						enc := codec.GetEncoder()
						enc.Reserve(rpc.PayloadHeadroom)
						enc.Raw(payload)
						resp, err := client.CallFramed(ctx, method, enc.Framed(), rpc.CallOptions{Shard: uint64(w) + 1})
						if err != nil {
							failed.Store(err)
							return
						}
						resp.Release()
						codec.PutEncoder(enc)
					}
				}(w)
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			if err := failed.Load(); err != nil {
				b.Fatal(err)
			}
			if secs := elapsed.Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)/secs, "calls/s")
			}
		})
	}
}

// BenchmarkLoadSweep is an extension experiment (E1 in EXPERIMENTS.md):
// median latency versus offered load for the baseline and weaver transport
// stacks on the simulated cloud with autoscaling capped, showing where each
// stack saturates.
func BenchmarkLoadSweep(b *testing.B) {
	for _, mode := range []struct {
		name  string
		costs simcloud.CostModel
	}{
		{"Baseline", simcloud.BaselineCosts},
		{"Weaver", simcloud.WeaverCosts},
	} {
		for _, qps := range []float64{500, 1000, 2000, 4000} {
			b.Run(fmt.Sprintf("%s/qps%d", mode.name, int(qps)), func(b *testing.B) {
				var last simcloud.BoutiqueResult
				for i := 0; i < b.N; i++ {
					last = simcloud.RunBoutique(simcloud.BoutiqueOptions{
						QPS: qps, Costs: mode.costs, Seed: 4,
						WarmupSeconds: 40, MeasureSeconds: 30,
						MaxPodsPerService: 8, // fixed capacity: saturation is the point
					})
				}
				b.ReportMetric(last.MedianLatency*1e3, "p50_ms")
				b.ReportMetric(last.P99Latency*1e3, "p99_ms")
				b.ReportMetric(last.TotalCores, "cores")
			})
		}
	}
}

// --- A3: colocation sweep ---

func BenchmarkColocationSweep(b *testing.B) {
	comps := simcloud.Components
	for _, groups := range []int{1, 2, 5, 10} {
		name := fmt.Sprintf("Groups%d", groups)
		b.Run(name, func(b *testing.B) {
			mapping := map[string]string{}
			for i, c := range comps {
				mapping[c] = fmt.Sprintf("g%d", i%groups)
			}
			var last simcloud.BoutiqueResult
			for i := 0; i < b.N; i++ {
				last = simcloud.RunBoutique(simcloud.BoutiqueOptions{
					QPS: 1000, Costs: simcloud.WeaverCosts, Groups: mapping, Seed: 2,
					WarmupSeconds: 40, MeasureSeconds: 30,
				})
			}
			b.ReportMetric(last.TotalCores, "cores")
			b.ReportMetric(last.MedianLatency*1e3, "p50_ms")
		})
	}
}

// --- A4: affinity routing ---

func BenchmarkAffinityRouting(b *testing.B) {
	replicas := []string{"r1", "r2", "r3", "r4"}
	assignment := routing.EqualSlices(1, replicas, 4)

	// Each replica holds a bounded FIFO cache, so a replica that sees the
	// whole key space (no affinity) thrashes while a replica that owns a
	// stable shard of keys (affinity) does not.
	const cacheCap = 200
	type fifoCache struct {
		set   map[uint64]bool
		order []uint64
	}
	run := func(b *testing.B, bal routing.Balancer, routed bool) {
		caches := map[string]*fifoCache{}
		for _, r := range replicas {
			caches[r] = &fifoCache{set: map[uint64]bool{}}
		}
		rng := rand.New(rand.NewPCG(9, 9))
		var hits, lookups float64
		for i := 0; i < b.N; i++ {
			// Skewed popularity over a key space larger than one cache.
			f := rng.Float64()
			key := uint64(f*f*3000) + 1
			h := routing.KeyHash(fmt.Sprint(key))
			addr, err := bal.Pick(h, routed)
			if err != nil {
				b.Fatal(err)
			}
			lookups++
			c := caches[addr]
			if c.set[key] {
				hits++
				continue
			}
			c.set[key] = true
			c.order = append(c.order, key)
			if len(c.order) > cacheCap {
				evict := c.order[0]
				c.order = c.order[1:]
				delete(c.set, evict)
			}
		}
		if lookups > 0 {
			b.ReportMetric(hits/lookups, "hit_rate")
		}
	}

	b.Run("Affinity", func(b *testing.B) {
		bal := routing.NewAffinity(replicas...)
		bal.Update(replicas, &assignment)
		run(b, bal, true)
	})
	b.Run("RoundRobin", func(b *testing.B) {
		run(b, routing.NewRoundRobin(replicas...), false)
	})
}

// --- A5: rollouts ---

func BenchmarkRollout(b *testing.B) {
	for _, p := range []rollout.Policy{rollout.RollingUnversioned, rollout.RollingTagged, rollout.AtomicUnversioned} {
		b.Run(p.String(), func(b *testing.B) {
			var last rollout.Result
			for i := 0; i < b.N; i++ {
				last = rollout.Run(p, rollout.Config{Replicas: 10, RequestsPerStep: 500, Seed: 7})
			}
			b.ReportMetric(last.FailureRate, "failure_rate")
			b.ReportMetric(float64(last.PeakFleet), "peak_fleet")
		})
	}
}

// --- A8: overload control and hedging ---

// BenchmarkAdmissionControl measures the data-plane cost of server-side
// admission control on an uncontended path: the semaphore must be nearly
// free when the server is below capacity.
func BenchmarkAdmissionControl(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts rpc.ServerOptions
	}{
		{"Unlimited", rpc.ServerOptions{}},
		{"MaxInflight64", rpc.ServerOptions{MaxInflight: 64, MaxQueue: 64}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			srv := rpc.NewServerWithOptions(mode.opts)
			srv.Register("bench.Adm", func(ctx context.Context, args []byte) ([]byte, error) {
				return args, nil
			})
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			client := rpc.NewClient(addr, rpc.ClientOptions{})
			defer client.Close()
			ctx := context.Background()
			payload := codec.Marshal(benchOrder())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Call(ctx, rpc.MethodKey("bench.Adm"), payload, rpc.CallOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHedgedTailLatency shows hedging's effect on the tail when one of
// two replicas is slow: p99 with hedging tracks the fast replica, without it
// the slow one.
func BenchmarkHedgedTailLatency(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"Hedged", false},
		{"Unhedged", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			const component = "bench/Hedge"
			mkServer := func() (*rpc.Server, string) {
				srv := rpc.NewServer()
				srv.Register(component+".M", func(ctx context.Context, args []byte) ([]byte, error) {
					return nil, nil
				})
				addr, err := srv.Listen("127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				return srv, addr
			}
			slow, slowAddr := mkServer()
			defer slow.Close()
			fast, fastAddr := mkServer()
			defer fast.Close()
			slow.SetDelay(3 * time.Millisecond)

			conn := core.NewDataPlaneConnWith(component, routing.NewRoundRobin(slowAddr, fastAddr),
				core.ConnOptions{HedgeAfter: time.Millisecond, DisableHedging: mode.disable, DisableBreaker: true})
			defer conn.Close()
			spec := &codegen.MethodSpec{
				Name:    "M",
				NewArgs: func() any { return &struct{}{} },
				NewRes:  func() any { return &struct{}{} },
				Do:      func(context.Context, any, any, any) {},
			}
			ctx := context.Background()
			lats := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var args, res struct{}
				t0 := time.Now()
				if err := conn.Invoke(ctx, component, spec, &args, &res, 0, false); err != nil {
					b.Fatal(err)
				}
				lats = append(lats, time.Since(t0))
			}
			b.StopTimer()
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			if len(lats) > 0 {
				b.ReportMetric(float64(lats[len(lats)*99/100].Microseconds())/1e3, "p99_ms")
			}
		})
	}
}

// --- A6: placement planning ---

func BenchmarkPlacement(b *testing.B) {
	// A boutique-shaped call graph.
	c := callgraph.NewCollector()
	edges := []struct {
		caller, callee string
		calls          int
	}{
		{"Frontend", "Currency", 3439}, {"Frontend", "ProductCatalog", 1090},
		{"Frontend", "AdService", 809}, {"Frontend", "Recommendation", 613},
		{"Recommendation", "ProductCatalog", 613}, {"Frontend", "Cart", 320},
		{"Frontend", "Shipping", 180}, {"Frontend", "Checkout", 60},
		{"Checkout", "Cart", 120}, {"Checkout", "Payment", 60},
		{"Checkout", "Shipping", 120}, {"Checkout", "Email", 60},
		{"Checkout", "Currency", 180}, {"Checkout", "ProductCatalog", 120},
	}
	for _, e := range edges {
		for i := 0; i < e.calls/10; i++ {
			c.Record(e.caller, e.callee, "M", time.Microsecond, 100, true, false)
		}
	}
	g := c.Analyze()
	b.ReportAllocs()
	var score float64
	for i := 0; i < b.N; i++ {
		score = placement.Evaluate(g, placement.Config{MaxGroupSize: 4}).Score
	}
	b.ReportMetric(score, "locality")
}
